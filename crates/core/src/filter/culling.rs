//! Heuristic duplicate culling for idempotent traversal (§4.1.1, §5.1).
//!
//! With an idempotent advance (no atomics guarding discovery), the output
//! frontier contains duplicates whenever frontier vertices share
//! neighbors. "Gunrock's filter step can perform a series of inexpensive
//! heuristics to reduce, but not eliminate, redundant entries":
//!
//! * **history culling** — a small per-task hash table of recently seen
//!   ids catches bursts of duplicates cheaply and *approximately*
//!   (collisions let duplicates through);
//! * **bitmask culling** — a `test_and_set` on the global visited bitmap
//!   guarantees each vertex ultimately enters a frontier at most once.
//!
//! Both are orthogonal to the user functor, which still runs fused on the
//! survivors.

use crate::context::Context;
use crate::functor::FilterFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_engine::config::FRONTIER_SEQ_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::OperatorKind;
use rayon::prelude::*;
use std::time::Instant;

/// Which culling heuristics to run (both on by default, as in Gunrock's
/// fastest BFS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CullingConfig {
    /// Enable the per-task history hash table.
    pub history: bool,
    /// log2 of the history table size.
    pub history_bits: u32,
    /// Enable the global visited-bitmap test-and-set.
    pub bitmask: bool,
}

impl Default for CullingConfig {
    fn default() -> Self {
        CullingConfig { history: true, history_bits: 8, bitmask: true }
    }
}

impl CullingConfig {
    /// No culling at all (duplicates pass straight through to the
    /// functor) — the ablation baseline.
    pub fn none() -> Self {
        CullingConfig { history: false, history_bits: 0, bitmask: false }
    }
}

/// Marks an unoccupied history-table slot. Cannot collide with a real
/// vertex id: graph construction rejects `num_vertices >= u32::MAX`
/// (see `Csr::validate`), so every legal id is strictly smaller.
const EMPTY_SLOT: u32 = u32::MAX;

/// Item interval between cooperative abort polls inside one cull chunk:
/// a raised cancel flag or expired deadline truncates the chunk instead
/// of overshooting by a whole filter launch.
const ABORT_POLL_ITEMS: u32 = 1024;

/// Runs the culling cascade (history hash, then bitmask test-and-set,
/// then the fused user functor) over `chunk`, appending survivors to
/// `out`. `history` must be `1 << cfg.history_bits` slots of
/// `EMPTY_SLOT` when `cfg.history` holds, and may be empty otherwise.
/// Polls `ctx` for a cancel/deadline abort and returns early (survivors
/// so far stay in `out`); the enact loop's guard discards the partial
/// frontier at the next boundary. Truncation is suppressed when a
/// checkpoint policy is active ([`Context::abort_mid_operator`]), so
/// snapshot boundaries always see a complete cull.
fn cull_chunk<F: FilterFunctor>(
    ctx: &Context<'_>,
    chunk: &[u32],
    cfg: CullingConfig,
    history: &mut [u32],
    visited: &AtomicBitmap,
    functor: &F,
    out: &mut Vec<u32>,
) {
    if ctx.abort_mid_operator() {
        return;
    }
    let mask = history.len().wrapping_sub(1);
    let mut since_poll = 0u32;
    for &id in chunk {
        since_poll += 1;
        if since_poll >= ABORT_POLL_ITEMS {
            since_poll = 0;
            if ctx.abort_mid_operator() {
                return;
            }
        }
        if cfg.history {
            // cheap multiplicative hash into the small table
            // CAST: vertex ids are u32 widened to usize — lossless.
            let slot = (id as usize).wrapping_mul(0x9E37_79B9) & mask;
            if history[slot] == id {
                continue; // recently seen: cull
            }
            history[slot] = id;
        }
        if cfg.bitmask && visited.test_and_set(id as usize) {
            continue; // already discovered: cull
        }
        if functor.cond(id) {
            functor.apply(id);
            out.push(id);
        }
    }
}

/// Heuristic filter: culls redundant ids per `cfg`, then applies the
/// user functor to survivors. `visited` is the algorithm's discovery
/// bitmap (shared with the advance step in idempotent mode).
pub fn filter_with_culling<F: FilterFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    visited: &AtomicBitmap,
    functor: &F,
    cfg: CullingConfig,
) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let result = isolated(ctx, "filter", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("filter:culling");
        }
        ctx.counters.add_filtered(input.len() as u64);
        let items = input.as_slice();
        if items.len() < FRONTIER_SEQ_CUTOFF {
            // small-frontier path: serial cull into pooled buffers
            // (output and history table both come back from the pool),
            // so steady-state iterations allocate nothing
            let mut out = ctx.pool().take_u32(items.len());
            let mut history =
                ctx.pool().take_u32(if cfg.history { 1 << cfg.history_bits } else { 0 });
            history.resize(if cfg.history { 1 << cfg.history_bits } else { 0 }, EMPTY_SLOT);
            cull_chunk(ctx, items, cfg, &mut history, visited, functor, &mut out);
            ctx.pool().put_u32(history);
            out
        } else {
            // Large-frontier path: per-task locals sized by the split,
            // merged once. The steady-state loop of a high-diameter
            // traversal takes the pooled serial branch above instead.
            let grain = grain_size(items.len());
            let chunks: Vec<Vec<u32>> = items
                .par_chunks(grain)
                .map(|chunk| {
                    let mut local = Vec::new(); // ALLOC-OK(per-task local on the large-frontier path)
                    let mut history = if cfg.history {
                        vec![EMPTY_SLOT; 1 << cfg.history_bits] // ALLOC-OK(per-task history table, large path only)
                    } else {
                        Vec::new() // ALLOC-OK(empty sentinel, no heap)
                    };
                    cull_chunk(ctx, chunk, cfg, &mut history, visited, functor, &mut local);
                    local
                })
                .collect(); // ALLOC-OK(one merge per large-frontier launch)
            concat_chunks(chunks)
        }
    });
    let Some(merged) = result else { return Frontier::new() };
    let out = Frontier::from_vec(merged);
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Filter,
            "culling",
            None,
            input.len() as u64,
            out.len() as u64,
            0,
            start.elapsed(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::VertexCond;
    use gunrock_graph::{Coo, GraphBuilder};

    fn ctx_fixture() -> (gunrock_graph::Csr,) {
        (GraphBuilder::new().build(Coo::from_edges(64, &[(0, 1)])),)
    }

    #[test]
    fn bitmask_guarantees_each_id_survives_once() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let dup_heavy = Frontier::from_vec(vec![3, 3, 5, 3, 5, 7, 3]);
        let out = filter_with_culling(
            &ctx,
            &dup_heavy,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![3, 5, 7]);
        // a second pass culls everything: all already visited
        let again = filter_with_culling(
            &ctx,
            &Frontier::from_vec(vec![3, 5, 7]),
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(again.is_empty());
    }

    #[test]
    fn history_only_reduces_but_may_not_eliminate() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let cfg = CullingConfig { history: true, history_bits: 4, bitmask: false };
        // consecutive duplicates are caught by the history table
        let input = Frontier::from_vec(vec![9, 9, 9, 9, 2, 2]);
        let out = filter_with_culling(&ctx, &input, &visited, &VertexCond(|_| true), cfg);
        assert_eq!(out.len(), 2);
        // visited bitmap untouched in history-only mode
        assert_eq!(visited.count_ones(), 0);
    }

    #[test]
    fn raised_cancel_flag_truncates_the_cull() {
        use crate::policy::RunPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // large synthetic frontier (well past FRONTIER_SEQ_CUTOFF) of
        // distinct ids, so an uncancelled run keeps every one of them
        let n: u32 = 200_000;
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &[(0, 1)]));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx =
            Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let input = Frontier::from_vec((0..n).collect());
        let visited = AtomicBitmap::new(n as usize);
        let full = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert_eq!(full.len(), n as usize);
        // flag up before launch: every chunk returns at its entry poll
        flag.store(true, Ordering::Release);
        let fresh_visited = AtomicBitmap::new(n as usize);
        let truncated = filter_with_culling(
            &ctx,
            &input,
            &fresh_visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(
            truncated.len() < full.len(),
            "cancel mid-operator must truncate: got {} of {}",
            truncated.len(),
            full.len()
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
    }

    #[test]
    fn no_culling_passes_duplicates_to_functor() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![1, 1, 1]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::none(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn functor_cond_still_applies_after_culling() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![2, 3, 4, 5]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|v: u32| v.is_multiple_of(2)),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 4]);
        // note: culled-by-functor ids are still marked visited (they were
        // discovered), matching BFS semantics where cond is a validity
        // test on already-labeled vertices
        assert_eq!(visited.count_ones(), 4);
    }
}
