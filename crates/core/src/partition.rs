//! Partitioned execution — a working model of the paper's §7 scalability
//! direction: "a future Gunrock must scale ... to multiple GPUs on a
//! single node; and to a distributed, multi-node clustered system. We
//! hope that Gunrock's data-centric focus on frontiers — which we
//! believe is vital for data distributions that go beyond a single GPU's
//! memory — provides an excellent substrate."
//!
//! Vertices are range-partitioned into shards ("devices"). A partitioned
//! advance expands each shard's sub-frontier independently; output
//! elements owned by other shards become **remote messages** exchanged at
//! the bulk-synchronous boundary, exactly as a multi-GPU frontier
//! exchange would ship them over NVLink/PCIe. The exchange statistics
//! (local vs remote discoveries) are the communication volume a real
//! multi-device deployment would pay, making partition-count/locality
//! trade-offs measurable on this substrate.

use crate::advance::{self, AdvanceSpec};
use crate::context::Context;
use crate::functor::AdvanceFunctor;
use gunrock_engine::frontier::Frontier;
use gunrock_graph::VertexId;

/// A contiguous range partition of the vertex set into `num_shards`
/// near-equal shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPartition {
    /// Shard boundaries: shard `s` owns `boundaries[s]..boundaries[s+1]`.
    boundaries: Vec<VertexId>,
}

impl VertexPartition {
    /// Splits `num_vertices` into `num_shards` contiguous ranges.
    pub fn even(num_vertices: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0);
        let mut boundaries = Vec::with_capacity(num_shards + 1);
        for s in 0..=num_shards {
            boundaries.push((num_vertices * s / num_shards) as VertexId);
        }
        VertexPartition { boundaries }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The shard owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        debug_assert!(self.boundaries.last().is_some_and(|&b| v < b));
        self.boundaries.partition_point(|&b| b <= v) - 1
    }

    /// The vertex range owned by shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<VertexId> {
        self.boundaries[s]..self.boundaries[s + 1]
    }

    /// Splits a global frontier into per-shard sub-frontiers.
    pub fn split_frontier(&self, frontier: &Frontier) -> Vec<Frontier> {
        let mut shards = vec![Vec::new(); self.num_shards()];
        for v in frontier {
            shards[self.shard_of(v)].push(v);
        }
        shards.into_iter().map(Frontier::from_vec).collect()
    }
}

/// Communication statistics from one partitioned bulk step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Output elements that stayed on their producing shard.
    pub local: u64,
    /// Output elements shipped to another shard (the inter-device
    /// traffic a multi-GPU deployment would pay).
    pub remote: u64,
}

impl ExchangeStats {
    /// Fraction of output that crossed shard boundaries.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            0.0
        } else {
            self.remote as f64 / total as f64
        }
    }

    /// Accumulates another step's stats.
    pub fn merge(&mut self, other: ExchangeStats) {
        self.local += other.local;
        self.remote += other.remote;
    }
}

/// One partitioned vertex-to-vertex advance: each shard expands its
/// sub-frontier (shards run sequentially here — one device's work at a
/// time on the shared substrate — but each shard's expansion uses the
/// full parallel advance internally), then outputs are routed to their
/// owning shards. Returns the per-shard next frontiers plus exchange
/// statistics.
pub fn partitioned_advance<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    partition: &VertexPartition,
    shard_frontiers: &[Frontier],
    functor: &F,
) -> (Vec<Frontier>, ExchangeStats) {
    assert_eq!(shard_frontiers.len(), partition.num_shards());
    let mut next: Vec<Vec<u32>> = vec![Vec::new(); partition.num_shards()];
    let mut stats = ExchangeStats::default();
    for (s, frontier) in shard_frontiers.iter().enumerate() {
        if frontier.is_empty() {
            continue;
        }
        let out = advance::advance(ctx, frontier, AdvanceSpec::v2v(), functor);
        for v in &out {
            let owner = partition.shard_of(v);
            if owner == s {
                stats.local += 1;
            } else {
                stats.remote += 1;
            }
            next[owner].push(v);
        }
    }
    (next.into_iter().map(Frontier::from_vec).collect(), stats)
}

/// Total size of a set of per-shard frontiers.
pub fn total_len(shards: &[Frontier]) -> usize {
    shards.iter().map(Frontier::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
    use gunrock_graph::{generators, GraphBuilder, INFINITY};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn even_partition_covers_everything_once() {
        let p = VertexPartition::even(10, 3);
        assert_eq!(p.num_shards(), 3);
        let mut owned = [0u32; 10];
        for s in 0..3 {
            for v in p.range(s) {
                owned[v as usize] += 1;
                assert_eq!(p.shard_of(v), s);
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn split_frontier_routes_by_ownership() {
        let p = VertexPartition::even(9, 3);
        let f = Frontier::from_vec(vec![0, 4, 8, 1, 5]);
        let shards = p.split_frontier(&f);
        assert_eq!(shards[0].as_slice(), &[0, 1]);
        assert_eq!(shards[1].as_slice(), &[4, 5]);
        assert_eq!(shards[2].as_slice(), &[8]);
    }

    /// Multi-shard BFS must agree with single-shard BFS, shard count
    /// notwithstanding — the correctness half of the scalability story.
    #[test]
    fn partitioned_bfs_matches_serial_for_any_shard_count() {
        let g = GraphBuilder::new().build(generators::rmat(9, 8, Default::default(), 7));
        let n = g.num_vertices();
        let want = {
            // serial reference
            let mut depth = vec![INFINITY; n];
            let mut q = std::collections::VecDeque::new();
            depth[0] = 0;
            q.push_back(0u32);
            while let Some(u) = q.pop_front() {
                for &v in g.neighbors(u) {
                    if depth[v as usize] == INFINITY {
                        depth[v as usize] = depth[u as usize] + 1;
                        q.push_back(v);
                    }
                }
            }
            depth
        };
        for shards in [1usize, 2, 3, 8] {
            let ctx = Context::new(&g);
            let partition = VertexPartition::even(n, shards);
            let labels = atomic_u32_vec(n, INFINITY);
            labels[0].store(0, Ordering::Relaxed);
            struct Discover<'a> {
                labels: &'a [AtomicU32],
                level: u32,
            }
            impl AdvanceFunctor for Discover<'_> {
                fn cond_edge(&self, _s: u32, d: u32, _e: u32) -> bool {
                    self.labels[d as usize]
                        .compare_exchange(
                            INFINITY,
                            self.level,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                }
            }
            let mut frontiers = partition.split_frontier(&Frontier::single(0));
            let mut level = 0;
            let mut exchange = ExchangeStats::default();
            while total_len(&frontiers) > 0 {
                level += 1;
                let f = Discover { labels: &labels, level };
                let (next, stats) = partitioned_advance(&ctx, &partition, &frontiers, &f);
                exchange.merge(stats);
                frontiers = next;
            }
            assert_eq!(unwrap_atomic_u32(&labels), want, "{shards} shards");
            if shards == 1 {
                assert_eq!(exchange.remote, 0, "one shard has no remote traffic");
            } else {
                assert!(exchange.remote > 0, "cross-shard edges must ship");
            }
        }
    }

    #[test]
    fn remote_fraction_grows_with_shard_count_on_random_graphs() {
        let g = GraphBuilder::new().build(generators::erdos_renyi(400, 2000, 3));
        let n = g.num_vertices();
        let mut fractions = Vec::new();
        for shards in [2usize, 8] {
            let ctx = Context::new(&g);
            let partition = VertexPartition::even(n, shards);
            let frontiers =
                partition.split_frontier(&Frontier::from_vec((0..n as u32).collect()));
            let (_, stats) = partitioned_advance(&ctx, &partition, &frontiers, &AcceptAll);
            fractions.push(stats.remote_fraction());
        }
        assert!(fractions[1] > fractions[0], "more shards, more cut edges: {fractions:?}");
    }

    #[test]
    fn exchange_stats_merge_and_fraction() {
        let mut a = ExchangeStats { local: 3, remote: 1 };
        a.merge(ExchangeStats { local: 1, remote: 3 });
        assert_eq!(a, ExchangeStats { local: 4, remote: 4 });
        assert!((a.remote_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ExchangeStats::default().remote_fraction(), 0.0);
    }
}
