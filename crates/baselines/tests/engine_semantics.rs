//! Semantics tests for the baseline engines themselves (beyond the
//! algorithm-level equivalence checks): representation switching in the
//! Ligra-role engine, superstep counting in GAS, and message combining
//! in the Medusa-role engine.

use gunrock_baselines::ligra::{edge_map, vertex_map, VertexSubset};
use gunrock_baselines::{gas, serial};
use gunrock_graph::generators::{erdos_renyi, rmat};
use gunrock_graph::{Coo, GraphBuilder};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn vertex_map_filters_both_representations() {
    let sparse = VertexSubset::Sparse(vec![1, 2, 3, 4]);
    let dense = VertexSubset::Dense(vec![false, true, true, true, true]);
    let keep_even = |v: u32| v.is_multiple_of(2);
    assert_eq!(vertex_map(&sparse, keep_even).to_vec(), vec![2, 4]);
    assert_eq!(vertex_map(&dense, keep_even).to_vec(), vec![2, 4]);
}

#[test]
fn edge_map_small_frontier_stays_sparse_large_goes_dense() {
    let g = GraphBuilder::new().build(rmat(8, 16, Default::default(), 1));
    // tiny frontier: sparse output expected
    let out = edge_map(&g, &g, &VertexSubset::single(0), |_, _, _| true, |_| true);
    assert!(matches!(out, VertexSubset::Sparse(_)), "tiny frontier should push");
    // full frontier: dense output expected
    let out = edge_map(&g, &g, &VertexSubset::full(g.num_vertices()), |_, _, _| true, |_| true);
    assert!(matches!(out, VertexSubset::Dense(_)), "full frontier should pull");
}

#[test]
fn edge_map_update_sees_each_directed_edge_at_most_once_in_sparse_mode() {
    let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (0, 2), (1, 2)]));
    let calls = AtomicU64::new(0);
    let _ = edge_map(
        &g,
        &g,
        &VertexSubset::Sparse(vec![0]),
        |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            true
        },
        |_| true,
    );
    assert_eq!(calls.load(Ordering::Relaxed), 2); // vertex 0 has 2 out-edges
}

#[test]
fn gas_superstep_count_tracks_graph_diameter() {
    // a path graph needs about diameter supersteps for BFS-like programs
    let g = GraphBuilder::new()
        .build(Coo::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
    let depth = gas::bfs(&g, &g, 0, gas::GasMode::Balanced);
    assert_eq!(depth, serial::bfs(&g, 0));
    assert_eq!(depth[5], 5);
}

#[test]
fn gas_modes_agree_on_heavy_skew() {
    let g = GraphBuilder::new().build(rmat(9, 16, Default::default(), 3));
    assert_eq!(
        gas::sssp(&g, &g, 0, gas::GasMode::PerVertex),
        gas::sssp(&g, &g, 0, gas::GasMode::Balanced)
    );
}

#[test]
fn serial_oracles_are_internally_consistent() {
    // spot-check the oracles against one another where their domains meet
    let g = GraphBuilder::new()
        .random_weights(1, 1, 7) // unit weights: SSSP == BFS
        .build(erdos_renyi(200, 700, 7));
    assert_eq!(serial::dijkstra(&g, 0), serial::bfs(&g, 0));
    assert_eq!(serial::bellman_ford(&g, 0), serial::bfs(&g, 0));
}
