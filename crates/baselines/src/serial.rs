//! Serial reference implementations — the Boost Graph Library role in
//! Table 2, and the correctness oracle every parallel engine is tested
//! against.
//!
//! These are deliberately textbook: queue BFS, binary-heap Dijkstra,
//! Brandes betweenness, union-find connected components, and power
//! iteration PageRank.

use gunrock_graph::{Csr, VertexId, Weight, INFINITY, INVALID_VERTEX};
use std::collections::VecDeque;

/// BFS depths from `src` (`INFINITY` = unreachable).
pub fn bfs(g: &Csr, src: VertexId) -> Vec<u32> {
    bfs_with_parents(g, src).0
}

/// BFS depths and a BFS-tree parent array (`INVALID_VERTEX` for the
/// source and unreachable vertices).
pub fn bfs_with_parents(g: &Csr, src: VertexId) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut depth = vec![INFINITY; n];
    let mut parent = vec![INVALID_VERTEX; n];
    let mut q = VecDeque::new();
    depth[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = depth[u as usize];
        for &v in g.neighbors(u) {
            if depth[v as usize] == INFINITY {
                depth[v as usize] = du + 1;
                parent[v as usize] = u;
                q.push_back(v);
            }
        }
    }
    (depth, parent)
}

/// Dijkstra shortest-path distances from `src` over non-negative edge
/// weights (`INFINITY` = unreachable). Unweighted graphs use weight 1
/// per edge.
pub fn dijkstra(g: &Csr, src: VertexId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u32, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for e in g.edge_range(u) {
            let v = g.col_indices()[e];
            let w: Weight = g.weight(e as u32);
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Bellman-Ford distances (used to cross-check the Ligra-role engine,
/// which implements Bellman-Ford as in the paper's comparison).
pub fn bellman_ford(g: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    dist[src as usize] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n as VertexId {
            let du = dist[u as usize];
            if du == INFINITY {
                continue;
            }
            for e in g.edge_range(u) {
                let v = g.col_indices()[e];
                let nd = du.saturating_add(g.weight(e as u32));
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
    }
    dist
}

/// Single-source Brandes pass: returns the dependency scores
/// (betweenness contributions) of one source — the quantity the paper's
/// BC primitive computes per enactment. `sigma` path counts use f64.
pub fn brandes_single_source(g: &Csr, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut depth = vec![INFINITY; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut q = VecDeque::new();
    sigma[src as usize] = 1.0;
    depth[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        order.push(u);
        let du = depth[u as usize];
        for &v in g.neighbors(u) {
            if depth[v as usize] == INFINITY {
                depth[v as usize] = du + 1;
                q.push_back(v);
            }
            if depth[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let du = depth[u as usize];
        for &v in g.neighbors(u) {
            if depth[v as usize] == du + 1 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta[src as usize] = 0.0;
    delta
}

/// Full betweenness centrality (sum of dependency scores over all
/// sources). Quadratic-ish; for tests and small graphs only.
pub fn betweenness_centrality(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    for s in 0..n as VertexId {
        for (v, d) in brandes_single_source(g, s).into_iter().enumerate() {
            bc[v] += d;
        }
    }
    bc
}

/// Connected component labels via union-find: every vertex is labeled
/// with the smallest vertex id in its component (canonical labeling).
pub fn connected_components(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n as VertexId {
        for &v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                // union by smaller id keeps the canonical label invariant
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct components given a label array.
pub fn num_components(labels: &[VertexId]) -> usize {
    let mut roots: Vec<VertexId> =
        labels.iter().enumerate().filter(|&(v, &l)| v as u32 == l).map(|(_, &l)| l).collect();
    roots.dedup();
    roots.len()
}

/// Brute-force triangle count: for every ordered edge `(u, v)`, count
/// common neighbors above `v` (requires sorted adjacency, which the
/// builder guarantees).
pub fn triangle_count(g: &Csr) -> u64 {
    let mut total = 0u64;
    for u in 0..g.num_vertices() as VertexId {
        for &v in g.neighbors(u) {
            if u >= v {
                continue;
            }
            let nu = g.neighbors(u);
            let nv = g.neighbors(v);
            let (mut i, mut j) =
                (nu.partition_point(|&x| x <= v), nv.partition_point(|&x| x <= v));
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        total += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    total
}

/// Synchronous power-iteration PageRank with damping `d`, teleport
/// `(1-d)/n`, dangling mass redistributed uniformly. Runs until the L1
/// change drops below `tol` or `max_iters` elapses. Returns scores that
/// sum to ~1.
pub fn pagerank(g: &Csr, d: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut pr = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        let dangling: f64 =
            (0..n as VertexId).filter(|&v| g.out_degree(v) == 0).map(|v| pr[v as usize]).sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n as VertexId {
            let deg = g.out_degree(u);
            if deg == 0 {
                continue;
            }
            let share = d * pr[u as usize] / deg as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let l1: f64 = pr.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pr, &mut next);
        if l1 < tol {
            break;
        }
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    fn path5() -> Csr {
        GraphBuilder::new().build(Coo::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]))
    }

    fn weighted_diamond() -> Csr {
        // 0 -1- 1 -1- 3 ; 0 -5- 2 -1- 3 : shortest 0..3 = 2 via 1
        GraphBuilder::new()
            .build(Coo::from_weighted_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 2, 5), (2, 3, 1)]))
    }

    #[test]
    fn bfs_depths_on_path() {
        assert_eq!(bfs(&path5(), 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&path5(), 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_parents_form_tree() {
        let (depth, parent) = bfs_with_parents(&path5(), 0);
        assert_eq!(parent[0], INVALID_VERTEX);
        for v in 1..5usize {
            assert_eq!(depth[parent[v] as usize] + 1, depth[v]);
        }
    }

    #[test]
    fn bfs_unreachable_is_infinity() {
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (2, 3)]));
        let d = bfs(&g, 0);
        assert_eq!(d[2], INFINITY);
        assert_eq!(d[3], INFINITY);
    }

    #[test]
    fn dijkstra_picks_light_path() {
        let d = dijkstra(&weighted_diamond(), 0);
        assert_eq!(d, vec![0, 1, 3, 2]); // vertex 2 reached via 3 (2+1=3) not direct 5
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let g = weighted_diamond();
        assert_eq!(bellman_ford(&g, 0), dijkstra(&g, 0));
    }

    #[test]
    fn brandes_path_center_scores() {
        // on a path 0-1-2-3-4 from source 0: delta[v] counts downstream
        let d = brandes_single_source(&path5(), 0);
        assert_eq!(d, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn full_bc_path_graph() {
        // classic: for path of 5, center vertex has highest BC
        let bc = betweenness_centrality(&path5());
        assert!(bc[2] > bc[1] && bc[1] > bc[0]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 8.0); // pairs (0,3),(0,4),(1,3),(1,4) x2 directions
    }

    #[test]
    fn cc_labels_components_canonically() {
        let g = GraphBuilder::new().build(Coo::from_edges(6, &[(0, 1), (1, 2), (4, 5)]));
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(num_components(&labels), 3);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // star: hub 0 with 4 leaves
        let g =
            GraphBuilder::new().build(Coo::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]));
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr[0] > pr[1]);
        assert!((pr[1] - pr[4]).abs() < 1e-12);
    }

    #[test]
    fn pagerank_handles_isolated_vertices() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1)]));
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] < pr[0]);
    }
}
