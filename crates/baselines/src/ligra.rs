//! A Ligra-role engine (Shun & Blelloch, PPoPP 2013): `edgeMap` /
//! `vertexMap` over vertex subsets with automatic sparse (push) / dense
//! (pull) representation switching.
//!
//! The paper compares against Ligra as the strongest shared-memory CPU
//! framework; per §6 its SSSP is Bellman-Ford (which explains the SSSP
//! performance inversion the paper discusses), so this engine implements
//! Bellman-Ford too.

use gunrock_engine::atomics::{atomic_u32_vec, fetch_min_u32, unwrap_atomic_u32, AtomicF64};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_graph::{Csr, VertexId, INFINITY, INVALID_VERTEX};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A subset of vertices: sparse id list or dense membership flags.
#[derive(Clone, Debug)]
pub enum VertexSubset {
    /// Explicit member id list (small subsets).
    Sparse(Vec<u32>),
    /// Per-vertex membership flags (large subsets).
    Dense(Vec<bool>),
}

impl VertexSubset {
    /// Subset containing a single vertex.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// Subset of all `n` vertices.
    pub fn full(n: usize) -> Self {
        VertexSubset::Dense(vec![true; n])
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(d) => d.iter().filter(|&&b| b).count(),
        }
    }

    /// True when no vertices are members.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.is_empty(),
            VertexSubset::Dense(d) => !d.iter().any(|&b| b),
        }
    }

    /// Member ids as a vector (materializes dense subsets).
    pub fn to_vec(&self) -> Vec<u32> {
        match self {
            VertexSubset::Sparse(v) => v.clone(),
            VertexSubset::Dense(d) => {
                d.iter().enumerate().filter_map(|(i, &b)| b.then_some(i as u32)).collect()
            }
        }
    }
}

/// Ligra's representation-switch threshold: go dense when the frontier
/// plus its out-edges exceed `m / 20`.
fn should_densify(g: &Csr, frontier_len: usize, frontier_edges: u64) -> bool {
    frontier_len as u64 + frontier_edges > (g.num_edges() as u64) / 20
}

/// edgeMap: applies `update(u, v, w)` over edges leaving the subset
/// (`w` is the edge weight, resolved against whichever graph the active
/// mode iterates — forward in sparse/push, reverse in dense/pull; the
/// transpose carries weights, so both see the weight of edge `(u, v)`).
/// Vertices for which an update returns true enter the output subset.
/// `cond(v)` gates targets (dense mode stops scanning a target once its
/// cond fails).
pub fn edge_map<U, C>(
    g: &Csr,
    rev: &Csr,
    frontier: &VertexSubset,
    update: U,
    cond: C,
) -> VertexSubset
where
    U: Fn(VertexId, VertexId, u32) -> bool + Send + Sync,
    C: Fn(VertexId) -> bool + Send + Sync,
{
    let n = g.num_vertices();
    let sparse_ids;
    let (frontier_len, frontier_edges, ids): (usize, u64, &[u32]) = match frontier {
        VertexSubset::Sparse(v) => {
            let fe: u64 = v.par_iter().map(|&u| g.out_degree(u) as u64).sum();
            (v.len(), fe, v.as_slice())
        }
        VertexSubset::Dense(_) => {
            sparse_ids = frontier.to_vec();
            let fe: u64 = sparse_ids.par_iter().map(|&u| g.out_degree(u) as u64).sum();
            (sparse_ids.len(), fe, sparse_ids.as_slice())
        }
    };
    if should_densify(g, frontier_len, frontier_edges) {
        // Dense (pull): for every target passing cond, scan in-neighbors.
        let member = AtomicBitmap::new(n);
        ids.par_iter().for_each(|&u| member.set(u as usize));
        let out: Vec<bool> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                if !cond(v) {
                    return false;
                }
                let mut hit = false;
                for e in rev.edge_range(v) {
                    let u = rev.col_indices()[e];
                    if member.get(u as usize) && update(u, v, rev.weight(e as u32)) {
                        hit = true;
                        if !cond(v) {
                            break;
                        }
                    }
                }
                hit
            })
            .collect();
        VertexSubset::Dense(out)
    } else {
        // Sparse (push): expand out-edges, flag output vertices once.
        let claimed = AtomicBitmap::new(n);
        let chunks: Vec<Vec<u32>> = ids
            .par_chunks(256.max(ids.len() / (rayon::current_num_threads() * 8).max(1)))
            .map(|chunk| {
                let mut local = Vec::new();
                for &u in chunk {
                    for e in g.edge_range(u) {
                        let v = g.col_indices()[e];
                        if cond(v)
                            && update(u, v, g.weight(e as u32))
                            && !claimed.test_and_set(v as usize)
                        {
                            local.push(v);
                        }
                    }
                }
                local
            })
            .collect();
        VertexSubset::Sparse(chunks.concat())
    }
}

/// vertexMap: applies `f` to every member; members for which `f` returns
/// true stay in the output subset.
pub fn vertex_map<F>(subset: &VertexSubset, f: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Send + Sync,
{
    match subset {
        VertexSubset::Sparse(v) => {
            VertexSubset::Sparse(v.par_iter().copied().filter(|&u| f(u)).collect())
        }
        VertexSubset::Dense(d) => VertexSubset::Dense(
            d.par_iter().enumerate().map(|(i, &b)| b && f(i as u32)).collect(),
        ),
    }
}

/// BFS on the Ligra engine: parent-setting with CAS, as in the Ligra
/// paper. Returns `(depths, parents)`.
pub fn bfs(g: &Csr, rev: &Csr, src: VertexId) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    let parents = atomic_u32_vec(n, INVALID_VERTEX);
    // ORDERING: Relaxed — per-cell CAS/fetch_min updates in edgeMap race
    // benignly; Ligra's frontier barrier publishes them.
    parents[src as usize].store(src, Ordering::Relaxed);
    let mut depth = vec![INFINITY; n];
    depth[src as usize] = 0;
    let mut frontier = VertexSubset::single(src);
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next = edge_map(
            g,
            rev,
            &frontier,
            |u, v, _| {
                parents[v as usize]
                    .compare_exchange(INVALID_VERTEX, u, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |v| parents[v as usize].load(Ordering::Relaxed) == INVALID_VERTEX,
        );
        level += 1;
        for v in next.to_vec() {
            depth[v as usize] = level;
        }
        frontier = next;
    }
    let mut parents = unwrap_atomic_u32(&parents);
    parents[src as usize] = INVALID_VERTEX;
    (depth, parents)
}

/// Bellman-Ford SSSP on the Ligra engine (the algorithm Ligra itself
/// ships, per the paper's §6 discussion).
pub fn sssp_bellman_ford(g: &Csr, rev: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let dist = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — per-cell CAS/fetch_min updates in edgeMap race
    // benignly; Ligra's frontier barrier publishes them.
    dist[src as usize].store(0, Ordering::Relaxed);
    let visited = atomic_u32_vec(n, 0); // per-round re-add guard
    let mut frontier = VertexSubset::single(src);
    let mut round = 0u32;
    while !frontier.is_empty() && (round as usize) <= n {
        round += 1;
        let next = edge_map(
            g,
            rev,
            &frontier,
            |u, v, w| {
                let du = dist[u as usize].load(Ordering::Relaxed);
                if du == INFINITY {
                    return false;
                }
                let nd = du.saturating_add(w);
                if fetch_min_u32(&dist[v as usize], nd) {
                    // enter output once per round
                    dist_round_claim(&visited[v as usize], round)
                } else {
                    false
                }
            },
            |_| true,
        );
        frontier = next;
    }
    unwrap_atomic_u32(&dist)
}

fn dist_round_claim(cell: &AtomicU32, round: u32) -> bool {
    // ORDERING: Relaxed — per-cell CAS/fetch_min updates in edgeMap race
    // benignly; Ligra's frontier barrier publishes them.
    cell.swap(round, Ordering::Relaxed) != round
}

/// Label-propagation connected components on the Ligra engine.
/// Canonicalized to minimum-vertex-id labels.
pub fn connected_components(g: &Csr, rev: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let labels = atomic_u32_vec(n, 0);
    for (v, l) in labels.iter().enumerate() {
        // ORDERING: Relaxed — per-cell CAS/fetch_min updates in edgeMap race
        // benignly; Ligra's frontier barrier publishes them.
        l.store(v as u32, Ordering::Relaxed);
    }
    let round = atomic_u32_vec(n, 0);
    let mut frontier = VertexSubset::full(n);
    let mut r = 0u32;
    while !frontier.is_empty() {
        r += 1;
        let next = edge_map(
            g,
            rev,
            &frontier,
            |u, v, _| {
                let lu = labels[u as usize].load(Ordering::Relaxed);
                if fetch_min_u32(&labels[v as usize], lu) {
                    dist_round_claim(&round[v as usize], r)
                } else {
                    false
                }
            },
            |_| true,
        );
        frontier = next;
    }
    unwrap_atomic_u32(&labels)
}

/// PageRank on the Ligra engine: synchronous dense iterations, `iters`
/// rounds or until L1 convergence under `tol`.
pub fn pagerank(g: &Csr, rev: &Csr, d: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..max_iters {
        let dangling: f64 = (0..n as u32)
            .into_par_iter()
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| pr[v as usize])
            .sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let next: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(base)).collect();
        let frontier = VertexSubset::full(n);
        let pr_ref = &pr;
        let next_ref = &next;
        edge_map(
            g,
            rev,
            &frontier,
            |u, v, _| {
                let deg = g.out_degree(u) as f64;
                let _ = next_ref[v as usize].fetch_add(d * pr_ref[u as usize] / deg);
                false // no output frontier needed
            },
            |_| true,
        );
        let next: Vec<f64> = next.iter().map(|a| a.load()).collect();
        let l1: f64 = pr.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).sum();
        pr = next;
        if l1 < tol {
            break;
        }
    }
    pr
}

/// Single-source Brandes dependency scores on the Ligra engine (forward
/// BFS levels + backward accumulation with edgeMaps).
pub fn bc(g: &Csr, rev: &Csr, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let depth = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — per-cell CAS/fetch_min updates in edgeMap race
    // benignly; Ligra's frontier barrier publishes them.
    depth[src as usize].store(0, Ordering::Relaxed);
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    sigma[src as usize].store(1.0);
    let mut levels: Vec<Vec<u32>> = vec![vec![src]];
    let mut frontier = VertexSubset::single(src);
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let claimed = AtomicBitmap::new(n);
        let lv = level;
        let next = edge_map(
            g,
            rev,
            &frontier,
            |u, v, _| {
                let dv = depth[v as usize].load(Ordering::Relaxed);
                if dv == INFINITY {
                    let _ = depth[v as usize].compare_exchange(
                        INFINITY,
                        lv,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                if depth[v as usize].load(Ordering::Relaxed) == lv {
                    let _ = sigma[v as usize].fetch_add(sigma[u as usize].load());
                    !claimed.test_and_set(v as usize)
                } else {
                    false
                }
            },
            |v| depth[v as usize].load(Ordering::Relaxed) >= lv,
        );
        let ids = next.to_vec();
        if ids.is_empty() {
            break;
        }
        levels.push(ids);
        frontier = next;
    }
    let delta: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    for lvl in (0..levels.len().saturating_sub(1)).rev() {
        let fr = VertexSubset::Sparse(levels[lvl].clone());
        let lv = lvl as u32;
        edge_map(
            g,
            rev,
            &fr,
            |u, v, _| {
                if depth[v as usize].load(Ordering::Relaxed) == lv + 1 {
                    let su = sigma[u as usize].load();
                    let sv = sigma[v as usize].load();
                    let _ =
                        delta[u as usize].fetch_add(su / sv * (1.0 + delta[v as usize].load()));
                }
                false
            },
            |_| true,
        );
    }
    let mut out: Vec<f64> = delta.iter().map(|a| a.load()).collect();
    out[src as usize] = 0.0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    fn random_graph(seed: u64) -> Csr {
        GraphBuilder::new().random_weights(1, 64, seed).build(erdos_renyi(300, 900, seed))
    }

    #[test]
    fn subset_representations() {
        let s = VertexSubset::Sparse(vec![1, 3]);
        let d = VertexSubset::Dense(vec![false, true, false, true]);
        assert_eq!(s.len(), d.len());
        assert_eq!(s.to_vec(), d.to_vec());
        assert!(!s.is_empty());
        assert!(VertexSubset::Sparse(vec![]).is_empty());
    }

    #[test]
    fn bfs_matches_serial_on_random_graphs() {
        for seed in 0..3 {
            let g = random_graph(seed);
            let (depth, parents) = bfs(&g, &g, 0);
            assert_eq!(depth, serial::bfs(&g, 0), "seed {seed}");
            // parents consistent with depths
            for v in 0..g.num_vertices() {
                if depth[v] != INFINITY && depth[v] != 0 {
                    assert_eq!(depth[parents[v] as usize] + 1, depth[v]);
                }
            }
        }
    }

    #[test]
    fn bfs_dense_mode_engages_on_scale_free() {
        // rmat with a huge frontier forces the dense path
        let g = GraphBuilder::new().build(rmat(9, 16, Default::default(), 3));
        let (depth, _) = bfs(&g, &g, 0);
        assert_eq!(depth, serial::bfs(&g, 0));
    }

    #[test]
    fn sssp_matches_dijkstra() {
        for seed in 0..3 {
            let g = random_graph(seed + 10);
            assert_eq!(sssp_bellman_ford(&g, &g, 0), serial::dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = GraphBuilder::new().build(erdos_renyi(200, 220, 5));
        assert_eq!(connected_components(&g, &g), serial::connected_components(&g));
    }

    #[test]
    fn pagerank_matches_power_iteration() {
        let g = random_graph(77);
        let got = pagerank(&g, &g, 0.85, 1e-10, 100);
        let want = serial::pagerank(&g, 0.85, 1e-10, 100);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn bc_matches_brandes() {
        let g = GraphBuilder::new().build(Coo::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 3), (3, 5), (5, 6)],
        ));
        let got = bc(&g, &g, 0);
        let want = serial::brandes_single_source(&g, 0);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn bc_matches_brandes_on_random() {
        let g = GraphBuilder::new().build(erdos_renyi(120, 300, 9));
        let got = bc(&g, &g, 3);
        let want = serial::brandes_single_source(&g, 3);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
