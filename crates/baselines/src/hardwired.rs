//! Framework-free, per-primitive tuned implementations — the role of the
//! hardwired GPU kernels in Table 2: b40c (BFS), deltaStep (SSSP),
//! gpu_BC (BC), and conn (CC).
//!
//! These share no operator machinery: each primitive is a hand-fused
//! parallel loop nest over raw arrays, the upper bound that Gunrock's
//! programmable operators are measured against.

use gunrock_engine::atomics::{atomic_u32_vec, fetch_min_u32, unwrap_atomic_u32, AtomicF64};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_graph::{Csr, VertexId, INFINITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Direction-optimized BFS (the b40c/Beamer recipe, hand-fused): push
/// while the frontier is small, switch to a bitmap pull sweep when the
/// frontier's edges dominate, switch back for the tail. Returns depths.
pub fn bfs(g: &Csr, rev: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let depth = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — same benign-race discipline as the modeled hardwired
    // kernels: idempotent or monotonic per-cell updates, published by the level barrier.
    depth[src as usize].store(0, Ordering::Relaxed);
    let visited = AtomicBitmap::new(n);
    visited.set(src as usize);
    let mut frontier: Vec<u32> = vec![src];
    let mut level = 0u32;
    let mut unvisited_edges: u64 = g.num_edges() as u64 - g.out_degree(src) as u64;
    while !frontier.is_empty() {
        level += 1;
        let frontier_edges: u64 = frontier.par_iter().map(|&u| g.out_degree(u) as u64).sum();
        let next: Vec<u32> = if frontier_edges * 15 > unvisited_edges {
            // pull sweep over unvisited vertices
            let in_frontier = AtomicBitmap::new(n);
            frontier.par_iter().for_each(|&u| in_frontier.set(u as usize));
            (0..n as u32)
                .into_par_iter()
                .filter_map(|v| {
                    if visited.get(v as usize) {
                        return None;
                    }
                    for e in rev.edge_range(v) {
                        let u = rev.col_indices()[e];
                        if in_frontier.get(u as usize) {
                            depth[v as usize].store(level, Ordering::Relaxed);
                            visited.set(v as usize);
                            return Some(v);
                        }
                    }
                    None
                })
                .collect()
        } else {
            // push with test-and-set discovery
            frontier
                .par_iter()
                .map(|&u| {
                    let mut local = Vec::new();
                    for e in g.edge_range(u) {
                        let v = g.col_indices()[e];
                        if !visited.test_and_set(v as usize) {
                            depth[v as usize].store(level, Ordering::Relaxed);
                            local.push(v);
                        }
                    }
                    local
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        };
        unvisited_edges = unvisited_edges
            .saturating_sub(next.par_iter().map(|&v| g.out_degree(v) as u64).sum());
        frontier = next;
    }
    unwrap_atomic_u32(&depth)
}

/// Delta-stepping SSSP (the Davidson et al. deltaStep recipe): explicit
/// distance buckets of width `delta`, light relaxations settle a bucket
/// before moving on. Returns distances.
pub fn sssp_delta_stepping(g: &Csr, src: VertexId, delta: u32) -> Vec<u32> {
    assert!(delta > 0);
    let n = g.num_vertices();
    let dist = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — same benign-race discipline as the modeled hardwired
    // kernels: idempotent or monotonic per-cell updates, published by the level barrier.
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut buckets: Vec<Vec<u32>> = vec![vec![src]];
    let mut bi = 0usize;
    while bi < buckets.len() {
        // settle bucket bi to a fixpoint
        loop {
            let current = std::mem::take(&mut buckets[bi]);
            if current.is_empty() {
                break;
            }
            let lo = (bi as u64 * delta as u64) as u32;
            let hi = ((bi as u64 + 1) * delta as u64).min(u32::MAX as u64) as u32;
            // relax out-edges of bucket members whose dist is in range
            let updates: Vec<Vec<(u32, u32)>> = current
                .par_iter()
                .map(|&u| {
                    let mut local = Vec::new();
                    let du = dist[u as usize].load(Ordering::Relaxed);
                    if du < lo || du >= hi {
                        return local; // stale entry
                    }
                    for e in g.edge_range(u) {
                        let v = g.col_indices()[e];
                        let nd = du.saturating_add(g.weight(e as u32));
                        if fetch_min_u32(&dist[v as usize], nd) {
                            local.push((v, nd));
                        }
                    }
                    local
                })
                .collect();
            for (v, nd) in updates.concat() {
                let b = (nd / delta) as usize;
                if buckets.len() <= b {
                    buckets.resize(b + 1, Vec::new());
                }
                buckets[b].push(v);
            }
        }
        bi += 1;
    }
    unwrap_atomic_u32(&dist)
}

/// Edge-parallel single-source Brandes pass (the gpu_BC recipe):
/// level-synchronized forward sigma accumulation, backward dependency
/// accumulation. Returns dependency scores.
pub fn bc(g: &Csr, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let depth = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — same benign-race discipline as the modeled hardwired
    // kernels: idempotent or monotonic per-cell updates, published by the level barrier.
    depth[src as usize].store(0, Ordering::Relaxed);
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    sigma[src as usize].store(1.0);
    let mut levels: Vec<Vec<u32>> = vec![vec![src]];
    let mut level = 0u32;
    loop {
        level += 1;
        // LINT-ALLOW(panic): `levels` starts with the source level and only
        // ever grows, so `last()` cannot fail.
        let frontier = levels.last().unwrap();
        let claimed = AtomicBitmap::new(n);
        let next: Vec<Vec<u32>> = frontier
            .par_iter()
            .map(|&u| {
                let mut local = Vec::new();
                for &v in g.neighbors(u) {
                    if depth[v as usize].load(Ordering::Relaxed) == INFINITY {
                        let _ = depth[v as usize].compare_exchange(
                            INFINITY,
                            level,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    }
                    if depth[v as usize].load(Ordering::Relaxed) == level {
                        let _ = sigma[v as usize].fetch_add(sigma[u as usize].load());
                        if !claimed.test_and_set(v as usize) {
                            local.push(v);
                        }
                    }
                }
                local
            })
            .collect();
        let next = next.concat();
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    let delta: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    for lvl in (0..levels.len() - 1).rev() {
        let lv = lvl as u32;
        levels[lvl].par_iter().for_each(|&u| {
            let mut acc = 0.0;
            for &v in g.neighbors(u) {
                if depth[v as usize].load(Ordering::Relaxed) == lv + 1 {
                    acc += sigma[u as usize].load() / sigma[v as usize].load()
                        * (1.0 + delta[v as usize].load());
                }
            }
            if acc != 0.0 {
                let _ = delta[u as usize].fetch_add(acc);
            }
        });
    }
    let mut out: Vec<f64> = delta.iter().map(|a| a.load()).collect();
    out[src as usize] = 0.0;
    out
}

/// Soman et al.'s connected components (the conn recipe): alternating
/// hooking over all edges plus full pointer jumping, directly on a label
/// array. Returns canonical (min-id) labels.
pub fn cc_soman(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let label = atomic_u32_vec(n, 0);
    for (v, l) in label.iter().enumerate() {
        // ORDERING: Relaxed — same benign-race discipline as the modeled hardwired
        // kernels: idempotent or monotonic per-cell updates, published by the level barrier.
        l.store(v as u32, Ordering::Relaxed);
    }
    let mut iter = 0u32;
    loop {
        iter += 1;
        let hooked = AtomicBool::new(false);
        // hooking: treat labels as a pointer forest; for each edge with
        // differently-labeled endpoints, hook the larger label's cell
        // under the smaller label (Soman alternates hook direction per
        // iteration to break chains; with the min-label discipline the
        // monotone direction converges and keeps labels canonical)
        let _ = iter;
        (0..n as u32).into_par_iter().for_each(|u| {
            for &v in g.neighbors(u) {
                let lu = label[u as usize].load(Ordering::Relaxed);
                let lv = label[v as usize].load(Ordering::Relaxed);
                if lu == lv {
                    continue;
                }
                let (hi, lo) = if lu > lv { (lu, lv) } else { (lv, lu) };
                if label[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
                    hooked.store(true, Ordering::Relaxed);
                }
            }
        });
        // pointer jumping: flatten label trees to stars
        loop {
            let jumped = AtomicBool::new(false);
            (0..n as u32).into_par_iter().for_each(|v| {
                let l = label[v as usize].load(Ordering::Relaxed);
                let ll = label[l as usize].load(Ordering::Relaxed);
                if ll < l {
                    label[v as usize].fetch_min(ll, Ordering::Relaxed);
                    jumped.store(true, Ordering::Relaxed);
                }
            });
            if !jumped.load(Ordering::Relaxed) {
                break;
            }
        }
        if !hooked.load(Ordering::Relaxed) {
            break;
        }
    }
    unwrap_atomic_u32(&label)
}

/// Parallel synchronous power-iteration PageRank (dense, hand-fused).
pub fn pagerank(g: &Csr, rev: &Csr, damping: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..max_iters {
        let dangling: f64 = (0..n as u32)
            .into_par_iter()
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| pr[v as usize])
            .sum();
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let pr_ref = &pr;
        // pull form: no atomics needed — each vertex sums its in-edges
        let next: Vec<f64> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut acc = 0.0;
                for e in rev.edge_range(v) {
                    let u = rev.col_indices()[e];
                    acc += pr_ref[u as usize] / g.out_degree(u) as f64;
                }
                base + damping * acc
            })
            .collect();
        let l1: f64 = pr.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).sum();
        pr = next;
        if l1 < tol {
            break;
        }
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, rmat};
    use gunrock_graph::GraphBuilder;

    fn suite() -> Vec<Csr> {
        vec![
            GraphBuilder::new().random_weights(1, 64, 1).build(erdos_renyi(300, 900, 1)),
            GraphBuilder::new().random_weights(1, 64, 2).build(rmat(
                8,
                8,
                Default::default(),
                2,
            )),
            GraphBuilder::new().random_weights(1, 64, 3).build(grid2d(18, 18, 0.1, 0.05, 3)),
        ]
    }

    #[test]
    fn bfs_matches_serial_incl_direction_switches() {
        for (i, g) in suite().iter().enumerate() {
            assert_eq!(bfs(g, g, 0), serial::bfs(g, 0), "graph {i}");
        }
    }

    #[test]
    fn delta_stepping_matches_dijkstra_across_deltas() {
        for g in suite() {
            let want = serial::dijkstra(&g, 0);
            for delta in [1u32, 8, 32, 1024] {
                assert_eq!(sssp_delta_stepping(&g, 0, delta), want, "delta {delta}");
            }
        }
    }

    #[test]
    fn bc_matches_brandes() {
        for g in suite() {
            let got = bc(&g, 0);
            let want = serial::brandes_single_source(&g, 0);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cc_matches_union_find() {
        for g in suite() {
            assert_eq!(cc_soman(&g), serial::connected_components(&g));
        }
        // plus a disconnected graph
        let g = GraphBuilder::new().build(erdos_renyi(400, 380, 9));
        assert_eq!(cc_soman(&g), serial::connected_components(&g));
    }

    #[test]
    fn pagerank_matches_power_iteration() {
        let g = &suite()[0];
        let got = pagerank(g, g, 0.85, 1e-12, 100);
        let want = serial::pagerank(g, 0.85, 1e-12, 100);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
