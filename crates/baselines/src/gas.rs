//! A gather-apply-scatter engine — the PowerGraph / MapGraph role in the
//! evaluation (§2.2, §4.5).
//!
//! Faithful to the property the paper blames for the GAS performance
//! gap: "the significant fragmentation of GAS programs across many
//! kernels" (§4.5). Every superstep here runs three *separate* parallel
//! passes — gather, apply, scatter — with the gather accumulator
//! **materialized to memory** between them (no fusion), exactly like the
//! multi-kernel GAS+GPU frameworks. Two workload-mapping modes stand in
//! for the two frameworks: [`GasMode::PerVertex`] (PowerGraph-style
//! vertex parallelism, load-imbalanced on skewed degrees) and
//! [`GasMode::Balanced`] (MapGraph-style dynamic chunking).

use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_graph::{Csr, VertexId, INFINITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Workload mapping for the gather/scatter passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GasMode {
    /// One task per active vertex (PowerGraph role).
    PerVertex,
    /// Edge-count-balanced dynamic chunks (MapGraph role).
    Balanced,
}

/// A vertex program in the GAS model. `G` is the gather accumulator.
pub trait VertexProgram: Sync {
    /// Gather accumulator type.
    type Gather: Copy + Send + Sync;

    /// Identity of the gather sum.
    fn gather_identity(&self) -> Self::Gather;

    /// Per-in-edge gather: contribution of edge `(u, v)` (weight `w`) to
    /// `v`'s accumulator.
    fn gather(&self, u: VertexId, v: VertexId, w: u32) -> Self::Gather;

    /// Associative combiner of gather contributions.
    fn sum(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// Apply the accumulated gather to `v`'s state; return true if the
    /// state changed (activating the scatter).
    fn apply(&self, v: VertexId, acc: Self::Gather) -> bool;

    /// Per-out-edge scatter from a changed vertex: return true to
    /// activate the neighbor `v` for the next superstep.
    fn scatter(&self, u: VertexId, v: VertexId, w: u32) -> bool;
}

/// Runs the GAS engine to convergence (empty active set) or `max_iters`.
/// Returns the number of supersteps executed.
pub fn run<P: VertexProgram>(
    g: &Csr,
    rev: &Csr,
    program: &P,
    initial_active: Vec<u32>,
    mode: GasMode,
    max_iters: usize,
) -> usize {
    let n = g.num_vertices();
    let mut active = initial_active;
    let mut iters = 0usize;
    while !active.is_empty() && iters < max_iters {
        iters += 1;
        // ---- Kernel 1: GATHER (materialized accumulator array) ----
        let acc: Vec<Option<P::Gather>> = match mode {
            GasMode::PerVertex => {
                active.par_iter().map(|&v| gather_one(rev, program, v)).collect()
            }
            GasMode::Balanced => {
                // dynamic chunks sized by a grain of vertices but using
                // rayon's work stealing to smooth degree skew
                active
                    .par_chunks(64)
                    .flat_map_iter(|chunk| chunk.iter().map(|&v| gather_one(rev, program, v)))
                    .collect()
            }
        };
        // ---- Kernel 2: APPLY (separate full pass over active set) ----
        let changed: Vec<bool> = active
            .par_iter()
            .zip(acc.par_iter())
            .map(|(&v, a)| match a {
                Some(acc) => program.apply(v, *acc),
                None => false,
            })
            .collect();
        // ---- Kernel 3: SCATTER (third pass; activation set dedup) ----
        let next_bitmap = AtomicBitmap::new(n);
        let next: Vec<Vec<u32>> = active
            .par_iter()
            .zip(changed.par_iter())
            .map(|(&u, &ch)| {
                let mut local = Vec::new();
                if ch {
                    for e in g.edge_range(u) {
                        let v = g.col_indices()[e];
                        if program.scatter(u, v, g.weight(e as u32))
                            && !next_bitmap.test_and_set(v as usize)
                        {
                            local.push(v);
                        }
                    }
                }
                local
            })
            .collect();
        active = next.concat();
    }
    iters
}

fn gather_one<P: VertexProgram>(rev: &Csr, program: &P, v: VertexId) -> Option<P::Gather> {
    let mut acc: Option<P::Gather> = None;
    for e in rev.edge_range(v) {
        let u = rev.col_indices()[e];
        let contrib = program.gather(u, v, rev.weight(e as u32));
        acc = Some(match acc {
            Some(a) => program.sum(a, contrib),
            None => contrib,
        });
    }
    acc
}

// ---------------------------------------------------------------------
// Vertex programs
// ---------------------------------------------------------------------

use gunrock_engine::atomics::AtomicF64;

/// BFS as a GAS vertex program: gather min(parent depth) + 1.
struct BfsProgram<'a> {
    depth: &'a [AtomicU32],
}

impl VertexProgram for BfsProgram<'_> {
    type Gather = u32;
    fn gather_identity(&self) -> u32 {
        INFINITY
    }
    fn gather(&self, u: VertexId, _v: VertexId, _w: u32) -> u32 {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.depth[u as usize].load(Ordering::Relaxed).saturating_add(1)
    }
    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, v: VertexId, acc: u32) -> bool {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        acc < self.depth[v as usize].load(Ordering::Relaxed) && {
            self.depth[v as usize].fetch_min(acc, Ordering::Relaxed) > acc
        }
    }
    fn scatter(&self, _u: VertexId, v: VertexId, _w: u32) -> bool {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.depth[v as usize].load(Ordering::Relaxed) == INFINITY
    }
}

/// BFS depths via the GAS engine.
pub fn bfs(g: &Csr, rev: &Csr, src: VertexId, mode: GasMode) -> Vec<u32> {
    let depth = atomic_u32_vec(g.num_vertices(), INFINITY);
    // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
    // the GAS super-step barrier publishes them.
    depth[src as usize].store(0, Ordering::Relaxed);
    // seed: activate the source's neighbors (source itself has no gather)
    let initial: Vec<u32> = g.neighbors(src).to_vec();
    run(g, rev, &BfsProgram { depth: &depth }, initial, mode, g.num_vertices() + 1);
    unwrap_atomic_u32(&depth)
}

/// SSSP as a GAS vertex program: gather min(dist[u] + w).
struct SsspProgram<'a> {
    dist: &'a [AtomicU32],
}

impl VertexProgram for SsspProgram<'_> {
    type Gather = u32;
    fn gather_identity(&self) -> u32 {
        INFINITY
    }
    fn gather(&self, u: VertexId, _v: VertexId, w: u32) -> u32 {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.dist[u as usize].load(Ordering::Relaxed).saturating_add(w)
    }
    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, v: VertexId, acc: u32) -> bool {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.dist[v as usize].fetch_min(acc, Ordering::Relaxed) > acc
    }
    fn scatter(&self, _u: VertexId, _v: VertexId, _w: u32) -> bool {
        true // any neighbor of a changed vertex may improve
    }
}

/// SSSP distances via the GAS engine.
pub fn sssp(g: &Csr, rev: &Csr, src: VertexId, mode: GasMode) -> Vec<u32> {
    let dist = atomic_u32_vec(g.num_vertices(), INFINITY);
    // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
    // the GAS super-step barrier publishes them.
    dist[src as usize].store(0, Ordering::Relaxed);
    let initial: Vec<u32> = g.neighbors(src).to_vec();
    run(g, rev, &SsspProgram { dist: &dist }, initial, mode, usize::MAX);
    unwrap_atomic_u32(&dist)
}

/// Connected components as a GAS vertex program: gather min neighbor
/// label.
struct CcProgram<'a> {
    label: &'a [AtomicU32],
}

impl VertexProgram for CcProgram<'_> {
    type Gather = u32;
    fn gather_identity(&self) -> u32 {
        u32::MAX
    }
    fn gather(&self, u: VertexId, _v: VertexId, _w: u32) -> u32 {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.label[u as usize].load(Ordering::Relaxed)
    }
    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, v: VertexId, acc: u32) -> bool {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        self.label[v as usize].fetch_min(acc, Ordering::Relaxed) > acc
    }
    fn scatter(&self, _u: VertexId, _v: VertexId, _w: u32) -> bool {
        true
    }
}

/// Connected component labels (min-id canonical) via the GAS engine.
pub fn connected_components(g: &Csr, rev: &Csr, mode: GasMode) -> Vec<VertexId> {
    let n = g.num_vertices();
    let label = atomic_u32_vec(n, 0);
    for (v, l) in label.iter().enumerate() {
        // ORDERING: Relaxed — gather/apply cells take monotonic fetch_min updates;
        // the GAS super-step barrier publishes them.
        l.store(v as u32, Ordering::Relaxed);
    }
    let initial: Vec<u32> = (0..n as u32).collect();
    run(g, rev, &CcProgram { label: &label }, initial, mode, n + 1);
    unwrap_atomic_u32(&label)
}

/// PageRank as a GAS vertex program with per-superstep tolerance-based
/// activation.
struct PrProgram<'a> {
    g: &'a Csr,
    pr: &'a [AtomicF64],
    damping: f64,
    base: f64,
    tol: f64,
}

impl VertexProgram for PrProgram<'_> {
    type Gather = f64;
    fn gather_identity(&self) -> f64 {
        0.0
    }
    fn gather(&self, u: VertexId, _v: VertexId, _w: u32) -> f64 {
        let deg = self.g.out_degree(u);
        if deg == 0 {
            0.0
        } else {
            self.pr[u as usize].load() / deg as f64
        }
    }
    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn apply(&self, v: VertexId, acc: f64) -> bool {
        let new = self.base + self.damping * acc;
        let old = self.pr[v as usize].load();
        self.pr[v as usize].store(new);
        (new - old).abs() > self.tol
    }
    fn scatter(&self, _u: VertexId, _v: VertexId, _w: u32) -> bool {
        true
    }
}

/// PageRank via the GAS engine (synchronous; vertices deactivate when
/// their score settles under `tol`). Graphs with dangling vertices are
/// supported by uniform teleport only (dangling mass is dropped, as in
/// the GAS frameworks).
pub fn pagerank(
    g: &Csr,
    rev: &Csr,
    damping: f64,
    tol: f64,
    max_iters: usize,
    mode: GasMode,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let pr: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(1.0 / n as f64)).collect();
    let program = PrProgram { g, pr: &pr, damping, base: (1.0 - damping) / n as f64, tol };
    let initial: Vec<u32> = (0..n as u32).collect();
    run(g, rev, &program, initial, mode, max_iters);
    pr.iter().map(|a| a.load()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::GraphBuilder;

    fn graphs() -> Vec<Csr> {
        vec![
            GraphBuilder::new().random_weights(1, 64, 1).build(erdos_renyi(250, 700, 1)),
            GraphBuilder::new().random_weights(1, 64, 2).build(rmat(
                8,
                8,
                Default::default(),
                2,
            )),
        ]
    }

    #[test]
    fn bfs_matches_serial_in_both_modes() {
        for g in graphs() {
            let want = serial::bfs(&g, 0);
            assert_eq!(bfs(&g, &g, 0, GasMode::PerVertex), want);
            assert_eq!(bfs(&g, &g, 0, GasMode::Balanced), want);
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        for g in graphs() {
            let want = serial::dijkstra(&g, 0);
            assert_eq!(sssp(&g, &g, 0, GasMode::PerVertex), want);
            assert_eq!(sssp(&g, &g, 0, GasMode::Balanced), want);
        }
    }

    #[test]
    fn cc_matches_union_find() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 320, 4));
        let want = serial::connected_components(&g);
        assert_eq!(connected_components(&g, &g, GasMode::PerVertex), want);
        assert_eq!(connected_components(&g, &g, GasMode::Balanced), want);
    }

    #[test]
    fn pagerank_close_to_power_iteration() {
        let g = GraphBuilder::new().build(erdos_renyi(200, 800, 7));
        let got = pagerank(&g, &g, 0.85, 1e-12, 100, GasMode::Balanced);
        let want = serial::pagerank(&g, 0.85, 1e-12, 100);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
