//! # gunrock-baselines
//!
//! Every comparison system from the paper's evaluation (§6, Table 2),
//! rebuilt on the same graph substrate so that the framework-overhead
//! comparisons are apples-to-apples (see DESIGN.md §2):
//!
//! * [`serial`] — textbook single-threaded implementations, playing the
//!   Boost Graph Library role (and doubling as the correctness oracle for
//!   every other engine).
//! * [`ligra`] — an edgeMap/vertexMap engine with sparse/dense
//!   auto-switching, playing the Ligra role.
//! * [`gas`] — a gather-apply-scatter engine with unfused multi-pass
//!   phases, playing the PowerGraph/MapGraph role.
//! * [`medusa`] — a message-passing BSP engine with materialized message
//!   buffers, playing the Medusa role.
//! * [`hardwired`] — framework-free, per-primitive hand-tuned parallel
//!   implementations, playing the role of the hardwired GPU kernels
//!   (b40c BFS, delta-stepping SSSP, gpu_BC, conn CC).

#![warn(missing_docs)]

pub mod gas;
pub mod hardwired;
pub mod ligra;
pub mod medusa;
pub mod serial;
