//! A message-passing BSP engine — the Medusa role (Zhong & He, TPDS
//! 2014) in the evaluation.
//!
//! Faithful to the overhead the paper calls out (§4.5): "the overhead of
//! *any* management of messages is a significant contributor to
//! runtime." Each superstep **materializes a message buffer** (edge
//! processors emit `(dst, payload)` pairs), then a combiner pass folds
//! messages per destination, then a vertex processor pass consumes the
//! combined values — three passes plus buffer traffic, versus Gunrock's
//! fused single pass.

use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32, AtomicF64};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_graph::{Csr, VertexId, INFINITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A message addressed to a vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Message<T> {
    /// Receiving vertex.
    pub dst: VertexId,
    /// Message body (combined per destination before delivery).
    pub payload: T,
}

/// One BSP superstep of the message-passing model:
///
/// 1. **edge processor** — for each out-edge of each active vertex, emit
///    an optional message (materialized into a buffer);
/// 2. **combiner** — fold messages per destination with `combine`;
/// 3. **vertex processor** — each messaged vertex consumes its combined
///    value; returning true re-activates it.
///
/// Returns the next active set (deduplicated).
pub fn superstep<T, E, C, V>(
    g: &Csr,
    active: &[u32],
    edge_proc: E,
    combine: C,
    vertex_proc: V,
) -> Vec<u32>
where
    T: Copy + Send + Sync,
    E: Fn(VertexId, VertexId, u32) -> Option<T> + Send + Sync,
    C: Fn(T, T) -> T + Send + Sync,
    V: Fn(VertexId, T) -> bool + Send + Sync,
{
    // Pass 1: edge processors fill the message buffer.
    let buffers: Vec<Vec<Message<T>>> = active
        .par_iter()
        .map(|&u| {
            let mut local = Vec::new();
            for e in g.edge_range(u) {
                let v = g.col_indices()[e];
                if let Some(payload) = edge_proc(u, v, g.weight(e as u32)) {
                    local.push(Message { dst: v, payload });
                }
            }
            local
        })
        .collect();
    let messages: Vec<Message<T>> = buffers.concat();
    if messages.is_empty() {
        return Vec::new();
    }
    // Pass 2: combiner — radix sort by destination, fold runs (the
    // GPU-native grouping primitive; see gunrock_engine::sort).
    let mut sorted = messages;
    gunrock_engine::sort::radix_sort_by_key(&mut sorted, |m| m.dst);
    let mut combined: Vec<Message<T>> = Vec::new();
    for m in sorted {
        match combined.last_mut() {
            Some(last) if last.dst == m.dst => last.payload = combine(last.payload, m.payload),
            _ => combined.push(m),
        }
    }
    // Pass 3: vertex processors consume combined messages.
    let n = g.num_vertices();
    let next_bitmap = AtomicBitmap::new(n);
    let next: Vec<Vec<u32>> = combined
        .par_iter()
        .map(|m| {
            let mut local = Vec::new();
            if vertex_proc(m.dst, m.payload) && !next_bitmap.test_and_set(m.dst as usize) {
                local.push(m.dst);
            }
            local
        })
        .collect();
    next.concat()
}

/// BFS depths via the message-passing engine.
pub fn bfs(g: &Csr, src: VertexId) -> Vec<u32> {
    let depth = atomic_u32_vec(g.num_vertices(), INFINITY);
    // ORDERING: Relaxed — message-combine cells take monotonic fetch_min
    // updates; the BSP super-step barrier publishes them.
    depth[src as usize].store(0, Ordering::Relaxed);
    let mut active = vec![src];
    while !active.is_empty() {
        let depth_ref: &[AtomicU32] = &depth;
        active = superstep(
            g,
            &active,
            |u, v, _w| {
                if depth_ref[v as usize].load(Ordering::Relaxed) == INFINITY {
                    Some(depth_ref[u as usize].load(Ordering::Relaxed).saturating_add(1))
                } else {
                    None
                }
            },
            |a: u32, b: u32| a.min(b),
            |v, d| depth_ref[v as usize].fetch_min(d, Ordering::Relaxed) > d,
        );
    }
    unwrap_atomic_u32(&depth)
}

/// SSSP distances via the message-passing engine (label-correcting).
pub fn sssp(g: &Csr, src: VertexId) -> Vec<u32> {
    let dist = atomic_u32_vec(g.num_vertices(), INFINITY);
    // ORDERING: Relaxed — message-combine cells take monotonic fetch_min
    // updates; the BSP super-step barrier publishes them.
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut active = vec![src];
    while !active.is_empty() {
        let dist_ref: &[AtomicU32] = &dist;
        active = superstep(
            g,
            &active,
            |u, _v, w| {
                let du = dist_ref[u as usize].load(Ordering::Relaxed);
                (du != INFINITY).then(|| du.saturating_add(w))
            },
            |a: u32, b: u32| a.min(b),
            |v, d| dist_ref[v as usize].fetch_min(d, Ordering::Relaxed) > d,
        );
    }
    unwrap_atomic_u32(&dist)
}

/// PageRank via the message-passing engine: every superstep messages all
/// neighbors with rank shares; runs `max_iters` full iterations or until
/// L1 convergence.
pub fn pagerank(g: &Csr, damping: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut pr = vec![1.0 / n as f64; n];
    let all: Vec<u32> = (0..n as u32).collect();
    for _ in 0..max_iters {
        let dangling: f64 = (0..n as u32)
            .into_par_iter()
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| pr[v as usize])
            .sum();
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let acc: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        let pr_ref = &pr;
        let acc_ref = &acc;
        superstep(
            g,
            &all,
            |u, _v, _w| {
                let deg = g.out_degree(u) as f64;
                Some(pr_ref[u as usize] / deg)
            },
            |a: f64, b: f64| a + b,
            |v, sum| {
                acc_ref[v as usize].store(sum);
                false
            },
        );
        let next: Vec<f64> =
            (0..n).into_par_iter().map(|v| base + damping * acc[v].load()).collect();
        let l1: f64 = pr.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).sum();
        pr = next;
        if l1 < tol {
            break;
        }
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use gunrock_graph::generators::erdos_renyi;
    use gunrock_graph::GraphBuilder;

    fn weighted_random(seed: u64) -> Csr {
        GraphBuilder::new().random_weights(1, 64, seed).build(erdos_renyi(250, 800, seed))
    }

    #[test]
    fn superstep_combines_messages_per_destination() {
        // star: 0 -> {1, 2}; 1 -> 0; 2 -> 0. active {1, 2} both message 0
        let g = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(3, &[(0, 1), (0, 2)]));
        let seen = atomic_u32_vec(3, 0);
        let seen_ref: &[AtomicU32] = &seen;
        let next = superstep(
            &g,
            &[1, 2],
            |_u, _v, _w| Some(1u32),
            |a, b| a + b,
            |v, total| {
                seen_ref[v as usize].store(total, Ordering::Relaxed);
                true
            },
        );
        assert_eq!(next, vec![0]);
        assert_eq!(seen[0].load(Ordering::Relaxed), 2); // combined, not twice
    }

    #[test]
    fn bfs_matches_serial() {
        for seed in [3u64, 4] {
            let g = weighted_random(seed);
            assert_eq!(bfs(&g, 0), serial::bfs(&g, 0));
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        for seed in [5u64, 6] {
            let g = weighted_random(seed);
            assert_eq!(sssp(&g, 0), serial::dijkstra(&g, 0));
        }
    }

    #[test]
    fn pagerank_matches_power_iteration() {
        let g = weighted_random(9);
        let got = pagerank(&g, 0.85, 1e-12, 100);
        let want = serial::pagerank(&g, 0.85, 1e-12, 100);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_active_set_is_stable() {
        let g = weighted_random(1);
        let next = superstep(&g, &[], |_, _, _| Some(0u32), |a, _| a, |_, _| true);
        assert!(next.is_empty());
    }
}
