//! Up-front footprint admission for the enact loops (DESIGN §11).
//!
//! When the context carries a memory budget, each primitive checks the
//! pessimistic [`estimate_bytes`] footprint of the whole run *before*
//! its first operator launches. Three outcomes:
//!
//! 1. the full-fat estimate fits the budget limit — run as configured;
//! 2. it doesn't, but demoting the advance to `thread_mapped` (dropping
//!    the load-balanced scan/partition workspace) would fit — take that
//!    degradation rung and record a [`DegradeEvent`];
//! 3. even the lean estimate exceeds the limit — poison the run with a
//!    structured [`GunrockError::BudgetExceeded`] so the caller gets an
//!    exact accounting instead of an allocator abort mid-run.
//!
//! The comparison is against the budget's *limit*, not its current
//! headroom: admission answers "can this run ever fit", while transient
//! pressure from concurrent runs is handled by the finer-grained rungs
//! inside the operators (lb→thread_mapped per advance, pull→push at the
//! bitmap build).
//!
//! [`estimate_bytes`]: gunrock_engine::budget::estimate_bytes
//! [`DegradeEvent`]: gunrock_engine::stats::DegradeEvent

use gunrock::prelude::*;
use gunrock_engine::budget::{advance_workspace_bytes, estimate_bytes};

/// Admits one run of `primitive`, returning the (possibly demoted)
/// advance mode. Poisons the context when even the lean footprint can
/// never fit the budget limit; the enact loop's first guard check then
/// ends the run as `Failed` before any operator launches.
pub(crate) fn admit(
    ctx: &Context<'_>,
    primitive: &'static str,
    mode: AdvanceMode,
) -> AdvanceMode {
    let Some(budget) = ctx.budget() else { return mode };
    let n = ctx.num_vertices() as u64;
    let m = ctx.num_edges() as u64;
    let full = estimate_bytes(primitive, n, m);
    let limit = budget.limit();
    if full <= limit {
        return mode;
    }
    // The estimate prices the widest (load-balanced) advance; swap in
    // the thread-mapped working set to price the demoted run.
    let lean = full - advance_workspace_bytes(n, m, "load_balanced")
        + advance_workspace_bytes(n, m, "thread_mapped");
    if lean <= limit {
        if !matches!(mode, AdvanceMode::ThreadMapped) {
            ctx.record_degrade(
                primitive,
                "lb_batch",
                "thread_mapped",
                format!(
                    "up-front estimate {full} bytes exceeds budget limit {limit}; \
                     thread-mapped footprint {lean} fits"
                ),
            );
        }
        return AdvanceMode::ThreadMapped;
    }
    ctx.poison(GunrockError::BudgetExceeded {
        operator: "admission",
        iteration: 0,
        requested: lean,
        reserved: budget.reserved(),
        limit,
    });
    mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_engine::budget::MemoryBudget;
    use gunrock_graph::{generators::erdos_renyi, GraphBuilder};
    use std::sync::Arc;

    #[test]
    fn roomy_budget_admits_unchanged() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 300, 1));
        let ctx = Context::new(&g).with_budget(Arc::new(MemoryBudget::new(1 << 30)));
        assert_eq!(admit(&ctx, "bfs", AdvanceMode::Auto), AdvanceMode::Auto);
        assert_eq!(ctx.degrade_count(), 0);
        assert!(!ctx.is_poisoned());
    }

    #[test]
    fn squeezed_budget_demotes_to_thread_mapped() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 300, 1));
        let n = g.num_vertices() as u64;
        let m = g.num_edges() as u64;
        let full = estimate_bytes("bfs", n, m);
        let lean = full - advance_workspace_bytes(n, m, "load_balanced")
            + advance_workspace_bytes(n, m, "thread_mapped");
        assert!(lean < full, "demotion must actually shrink the footprint");
        let ctx = Context::new(&g).with_stats().with_budget(Arc::new(MemoryBudget::new(lean)));
        assert_eq!(admit(&ctx, "bfs", AdvanceMode::Auto), AdvanceMode::ThreadMapped);
        assert!(!ctx.is_poisoned());
        let stats = ctx.run_stats();
        assert_eq!(stats.degrades.len(), 1);
        assert_eq!(stats.degrades[0].to, "thread_mapped");
    }

    #[test]
    fn hopeless_budget_poisons_with_structured_error() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 300, 1));
        let ctx = Context::new(&g).with_budget(Arc::new(MemoryBudget::new(64)));
        admit(&ctx, "bfs", AdvanceMode::Auto);
        assert!(ctx.is_poisoned());
        match ctx.take_failure() {
            Some(GunrockError::BudgetExceeded { operator, limit, requested, .. }) => {
                assert_eq!(operator, "admission");
                assert_eq!(limit, 64);
                assert!(requested > 64);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}
