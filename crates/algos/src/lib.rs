//! # gunrock-algos
//!
//! The graph primitives of the Gunrock paper (§5), written against the
//! [`gunrock`] operator set exactly as the paper describes — each
//! primitive is a short enactor loop over advance/filter/compute steps
//! with fused functors (Figure 5's flow charts are these loops):
//!
//! * [`bfs`] — atomic, idempotent (+culling filter), and
//!   direction-optimized variants (§5.1);
//! * [`sssp`] — advance + redundant-removal filter + two-level
//!   priority queue / delta stepping (§5.2, Algorithm 1);
//! * [`bc`] — Brandes betweenness, forward sigma + backward dependency
//!   advances (§5.3);
//! * [`cc`] — Soman hooking/pointer-jumping over an *edge* frontier
//!   (§5.4);
//! * [`pagerank`] — full-frontier advance with atomic accumulation and
//!   a convergence filter (§5.5);
//! * [`bipartite`] — HITS / SALSA / personalized PageRank and the
//!   who-to-follow pipeline (§5.5, "WTF, GPU!");
//! * [`extras`] — maximal independent set and greedy coloring, from the
//!   paper's in-development list;
//! * [`triangles`] / [`kcore`] — edge-frontier triangle counting and
//!   filter-loop k-core peeling, common Gunrock-family additions.
//!
//! ```
//! use gunrock::prelude::*;
//! use gunrock_algos::bfs::{bfs, BfsOptions};
//! use gunrock_graph::{generators, GraphBuilder};
//!
//! let g = GraphBuilder::new().build(generators::rmat(8, 8, Default::default(), 1));
//! let ctx = Context::new(&g);
//! let result = bfs(&ctx, 0, BfsOptions::fastest());
//! assert_eq!(result.labels[0], 0);
//! ```

#![warn(missing_docs)]

mod admission;
pub mod bc;
pub mod bfs;
pub mod bipartite;
pub mod cc;
pub mod extras;
pub mod kcore;
pub mod label_prop;
pub mod msbfs;
pub mod msppr;
pub mod mst;
pub mod pagerank;
pub mod recover;
pub mod sssp;
pub mod triangles;

pub use bc::{bc, bc_resume, BcOptions, BcResult};
pub use bfs::{bfs, bfs_resume, BfsOptions, BfsResult, BfsVariant};
pub use cc::{cc, cc_resume, CcResult};
pub use kcore::{k_core, KcoreResult};
pub use msbfs::{msbfs, msbfs_resume, try_msbfs, MsbfsResult};
pub use msppr::{msppr, msppr_resume, try_msppr, MspprOptions, MspprResult};
pub use mst::{mst, MstResult};
pub use pagerank::{pagerank, pagerank_pull, pagerank_resume, PrOptions, PrResult};
pub use recover::{resume, try_bc, try_bfs, try_cc, try_pagerank, try_sssp, ResumedRun};
pub use sssp::{sssp, sssp_resume, SsspOptions, SsspResult};
pub use triangles::{triangle_count, TriangleResult};
