//! Primitives from the paper's "developing or actively developing" list
//! (§5.5): maximal independent set and graph coloring — both natural
//! fits for the filter-centric abstraction (priority-based selection is
//! a frontier filter).

use gunrock::prelude::*;
use gunrock_graph::Csr;
use rayon::prelude::*;

/// Deterministic per-vertex random priority (splitmix-style hash).
#[inline]
fn priority(v: u32, seed: u64) -> u64 {
    let mut x = seed ^ ((v as u64) << 1 | 1);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// MIS output.
#[derive(Clone, Debug)]
pub struct MisResult {
    /// Membership mask: `true` means the vertex is in the set.
    pub in_set: Vec<bool>,
    /// Selection rounds executed.
    pub rounds: u32,
    /// How the loop ended. On a partial outcome the mask is independent
    /// (no two members adjacent) but possibly not yet *maximal*: some
    /// vertices are still undecided and marked `false`.
    pub outcome: RunOutcome,
}

/// Luby's maximal independent set: iteratively select undecided vertices
/// whose random priority beats every undecided neighbor, then drop their
/// neighbors; repeat until all vertices are decided.
pub fn maximal_independent_set(ctx: &Context<'_>, seed: u64) -> MisResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    const UNDECIDED: u8 = 0;
    const IN_SET: u8 = 1;
    const EXCLUDED: u8 = 2;
    let state: Vec<std::sync::atomic::AtomicU8> =
        (0..n).map(|_| std::sync::atomic::AtomicU8::new(UNDECIDED)).collect();
    use std::sync::atomic::Ordering;
    let mut frontier = Frontier::full(n);
    let mut round = 0u64;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    while !frontier.is_empty() {
        if let Some(tripped) = guard.check(round as u32) {
            outcome = tripped;
            break;
        }
        round += 1;
        let rseed = seed.wrapping_add(round);
        // selection filter: local maxima among undecided neighbors join
        let winners: Vec<u32> = frontier
            .as_slice()
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = priority(v, rseed);
                g.neighbors(v).iter().all(|&u| {
                    u == v
                        // ORDERING: Relaxed — per-cell status flips are idempotent race winners;
                        // round-to-round visibility comes from the join barrier.
                        || state[u as usize].load(Ordering::Relaxed) != UNDECIDED
                        || (priority(u, rseed), u) < (pv, v)
                })
            })
            .collect();
        for &v in &winners {
            state[v as usize].store(IN_SET, Ordering::Relaxed);
        }
        // exclusion compute: winners' neighbors leave the game
        compute::for_each(&Frontier::from_vec(winners), |v| {
            for &u in g.neighbors(v) {
                let _ = state[u as usize].compare_exchange(
                    UNDECIDED,
                    EXCLUDED,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        });
        // filter: undecided vertices continue
        frontier = filter::filter(
            ctx,
            &frontier,
            &VertexCond(|v: u32| state[v as usize].load(Ordering::Relaxed) == UNDECIDED),
        );
        ctx.end_iteration(false);
    }
    MisResult {
        in_set: state.into_iter().map(|s| s.into_inner() == IN_SET).collect(),
        rounds: round as u32,
        outcome,
    }
}

/// Checks the two MIS invariants: independence (no two members adjacent)
/// and maximality (every non-member has a member neighbor).
pub fn verify_mis(g: &Csr, mis: &[bool]) -> bool {
    for v in 0..g.num_vertices() {
        if mis[v] {
            if g.neighbors(v as u32).iter().any(|&u| u as usize != v && mis[u as usize]) {
                return false; // not independent
            }
        } else if !g.neighbors(v as u32).iter().any(|&u| mis[u as usize]) {
            return false; // not maximal
        }
    }
    true
}

/// Coloring output.
#[derive(Clone, Debug)]
pub struct ColoringResult {
    /// Color per vertex (0-based); `u32::MAX` means still uncolored
    /// (only possible on a partial outcome).
    pub colors: Vec<u32>,
    /// Coloring rounds executed.
    pub rounds: u32,
    /// How the loop ended. On a partial outcome the assigned colors are
    /// still a proper partial coloring (no two adjacent vertices share
    /// one), but some vertices remain `u32::MAX`.
    pub outcome: RunOutcome,
}

/// Jones–Plassmann greedy coloring: a vertex colors itself with the
/// smallest color unused by its neighbors once all higher-priority
/// uncolored neighbors are done.
pub fn greedy_coloring(ctx: &Context<'_>, seed: u64) -> ColoringResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    const UNCOLORED: u32 = u32::MAX;
    let colors = gunrock_engine::atomics::atomic_u32_vec(n, UNCOLORED);
    use std::sync::atomic::Ordering;
    let mut frontier = Frontier::full(n);
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    let mut rounds = 0u32;
    while !frontier.is_empty() {
        if let Some(tripped) = guard.check(rounds) {
            outcome = tripped;
            break;
        }
        rounds += 1;
        // color the local priority maxima among uncolored neighbors
        let ready: Vec<u32> = frontier
            .as_slice()
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = priority(v, seed);
                g.neighbors(v).iter().all(|&u| {
                    u == v
                        // ORDERING: Relaxed — per-cell status flips are idempotent race winners;
                        // round-to-round visibility comes from the join barrier.
                        || colors[u as usize].load(Ordering::Relaxed) != UNCOLORED
                        || (priority(u, seed), u) < (pv, v)
                })
            })
            .collect();
        ready.par_iter().for_each(|&v| {
            // smallest color free among colored neighbors
            let mut used: Vec<u32> = g
                .neighbors(v)
                .iter()
                .filter_map(|&u| {
                    let c = colors[u as usize].load(Ordering::Relaxed);
                    (c != UNCOLORED).then_some(c)
                })
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut c = 0u32;
            for &x in &used {
                if x == c {
                    c += 1;
                } else if x > c {
                    break;
                }
            }
            colors[v as usize].store(c, Ordering::Relaxed);
        });
        frontier = filter::filter(
            ctx,
            &frontier,
            &VertexCond(|v: u32| colors[v as usize].load(Ordering::Relaxed) == UNCOLORED),
        );
        ctx.end_iteration(false);
    }
    ColoringResult {
        colors: gunrock_engine::atomics::unwrap_atomic_u32(&colors),
        rounds,
        outcome,
    }
}

/// Checks a proper coloring: adjacent vertices have different colors.
pub fn verify_coloring(g: &Csr, colors: &[u32]) -> bool {
    for v in 0..g.num_vertices() {
        for &u in g.neighbors(v as u32) {
            if u as usize != v && colors[u as usize] == colors[v] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::generators::{erdos_renyi, grid2d, rmat};
    use gunrock_graph::GraphBuilder;

    fn suite() -> Vec<Csr> {
        vec![
            GraphBuilder::new().build(erdos_renyi(300, 900, 1)),
            GraphBuilder::new().build(rmat(8, 8, Default::default(), 2)),
            GraphBuilder::new().build(grid2d(12, 12, 0.0, 0.0, 3)),
        ]
    }

    #[test]
    fn mis_is_independent_and_maximal() {
        for (i, g) in suite().iter().enumerate() {
            let ctx = Context::new(g);
            let mis = maximal_independent_set(&ctx, 42);
            assert_eq!(mis.outcome, RunOutcome::Converged, "graph {i}");
            assert!(verify_mis(g, &mis.in_set), "graph {i}");
            assert!(mis.in_set.iter().any(|&b| b), "graph {i}: MIS nonempty");
        }
    }

    #[test]
    fn mis_of_isolated_vertices_is_everything() {
        let g = GraphBuilder::new().build(gunrock_graph::Coo::new(5));
        let ctx = Context::new(&g);
        let mis = maximal_independent_set(&ctx, 1);
        assert!(mis.in_set.iter().all(|&b| b));
    }

    #[test]
    fn coloring_is_proper_and_bounded() {
        for (i, g) in suite().iter().enumerate() {
            let ctx = Context::new(g);
            let r = greedy_coloring(&ctx, 7);
            assert_eq!(r.outcome, RunOutcome::Converged, "graph {i}");
            assert!(verify_coloring(g, &r.colors), "graph {i}");
            let max_color = r.colors.iter().copied().max().unwrap_or(0);
            assert!(max_color <= g.max_degree(), "greedy bound: {max_color}");
        }
    }

    #[test]
    fn grid_colors_with_few_colors() {
        // bipartite-ish grid: greedy should stay well under degree bound
        let g = GraphBuilder::new().build(grid2d(20, 20, 0.0, 0.0, 5));
        let ctx = Context::new(&g);
        let r = greedy_coloring(&ctx, 3);
        assert!(verify_coloring(&g, &r.colors));
        assert!(*r.colors.iter().max().unwrap() <= 4);
    }

    #[test]
    fn capped_mis_is_independent_but_may_be_incomplete() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 1500, 13));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let mis = maximal_independent_set(&ctx, 42);
        assert_eq!(mis.outcome, RunOutcome::IterationCapped);
        assert_eq!(mis.rounds, 1);
        // independence holds at every round boundary, maximality may not
        for v in 0..g.num_vertices() {
            if mis.in_set[v] {
                assert!(
                    !g.neighbors(v as u32)
                        .iter()
                        .any(|&u| u as usize != v && mis.in_set[u as usize]),
                    "vertex {v} adjacent to another member"
                );
            }
        }
    }

    #[test]
    fn capped_coloring_is_a_proper_partial_coloring() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 1500, 17));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = greedy_coloring(&ctx, 7);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.rounds, 1);
        for v in 0..g.num_vertices() {
            if r.colors[v] == u32::MAX {
                continue;
            }
            for &u in g.neighbors(v as u32) {
                if u as usize != v && r.colors[u as usize] != u32::MAX {
                    assert_ne!(r.colors[u as usize], r.colors[v], "edge {v}-{u}");
                }
            }
        }
    }
}
