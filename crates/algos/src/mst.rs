//! Minimum spanning forest — named in the paper's developed-primitives
//! list (§5.5: "we have developed or are actively developing ... minimal
//! spanning tree") and in §7 as a primitive that "internally modif[ies]
//! graph topology".
//!
//! Borůvka's algorithm in the frontier model: each round, every
//! component finds its minimum outgoing edge (a [`neighbor_reduce`]-style
//! per-vertex pass + per-component atomic min), the chosen edges hook
//! components together (the CC machinery), and pointer jumping flattens
//! labels; rounds repeat until no component has an outgoing edge.

use gunrock::prelude::*;
use gunrock_engine::atomics::atomic_u32_vec;
use gunrock_graph::{Csr, EdgeId, Weight};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// MST output.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// Edge ids (into the CSR) chosen for the spanning forest. For an
    /// undirected graph each chosen edge appears once (one direction).
    pub edges: Vec<EdgeId>,
    /// Total weight of the forest.
    pub total_weight: u64,
    /// Number of trees in the forest (== connected components).
    pub num_trees: usize,
    /// Borůvka rounds executed.
    pub rounds: u32,
    /// How the loop ended. On a partial outcome `edges` is a valid
    /// *sub-forest* of some minimum spanning forest (Borůvka rounds only
    /// ever commit safe edges), but components may not be fully merged:
    /// `num_trees` counts the merge state so far, an upper bound.
    pub outcome: RunOutcome,
}

/// Packs (weight, edge id) into one u64 so the per-component minimum can
/// be taken with a single atomic: weight in the high bits makes ordering
/// by weight primary, edge id breaks ties deterministically.
#[inline]
fn pack(w: Weight, e: EdgeId) -> u64 {
    ((w as u64) << 32) | e as u64
}

#[inline]
fn unpack(p: u64) -> (Weight, EdgeId) {
    ((p >> 32) as Weight, p as u32)
}

/// Computes a minimum spanning forest of the undirected weighted graph.
/// Unweighted graphs behave as weight-1 everywhere (any spanning forest).
pub fn mst(ctx: &Context<'_>) -> MstResult {
    let g: &Csr = ctx.graph;
    let n = g.num_vertices();
    // component labels, maintained like CC (hook + jump)
    let labels = atomic_u32_vec(n, 0);
    // ORDERING: Relaxed — packed best-edge and label cells are monotonic
    // fetch_min targets; each Boruvka round ends in a join barrier.
    labels.par_iter().enumerate().for_each(|(v, l)| l.store(v as u32, Ordering::Relaxed));
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut total_weight = 0u64;
    let mut rounds = 0u32;
    const NONE: u64 = u64::MAX;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    loop {
        if let Some(tripped) = guard.check(rounds) {
            outcome = tripped;
            break;
        }
        rounds += 1;
        ctx.end_iteration(false);
        // Step 1: per-component minimum outgoing edge (atomic min over
        // the packed (weight, edge) key).
        let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
        (0..n as u32).into_par_iter().for_each(|u| {
            let lu = labels[u as usize].load(Ordering::Relaxed);
            for e in g.edge_range(u) {
                let v = g.col_indices()[e];
                let lv = labels[v as usize].load(Ordering::Relaxed);
                if lu != lv {
                    best[lu as usize]
                        .fetch_min(pack(g.weight(e as u32), e as u32), Ordering::Relaxed);
                }
            }
        });
        ctx.counters.add_edges(g.num_edges() as u64);
        // Step 2: collect winners; stop when no component can grow.
        let winners: Vec<(u32, u64)> = (0..n as u32)
            .into_par_iter()
            .filter_map(|c| {
                let b = best[c as usize].load(Ordering::Relaxed);
                (b != NONE).then_some((c, b))
            })
            .collect();
        if winners.is_empty() {
            break;
        }
        // Step 3: hook along winning edges. Two components may pick the
        // same undirected edge (both directions), and equal-weight picks
        // can otherwise close cycles, so each edge is committed only if
        // its endpoints' *current roots* still differ — following label
        // chains gives the union-find view of this round's merges so far.
        let find = |mut x: u32| -> u32 {
            loop {
                let l = labels[x as usize].load(Ordering::Relaxed);
                if l == x {
                    return x;
                }
                x = l;
            }
        };
        for &(_c, b) in &winners {
            let (w, e) = unpack(b);
            let u = g.edge_source(e);
            let v = g.edge_dest(e);
            let ru = find(labels[u as usize].load(Ordering::Relaxed));
            let rv = find(labels[v as usize].load(Ordering::Relaxed));
            if ru == rv {
                continue; // already merged this round
            }
            chosen.push(e);
            total_weight += w as u64;
            // hook the larger root under the smaller (min-label invariant)
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            labels[hi as usize].store(lo, Ordering::Relaxed);
        }
        // Step 4: pointer jumping to flatten (serial-outer loop; each
        // pass is parallel)
        loop {
            let changed = std::sync::atomic::AtomicBool::new(false);
            (0..n as u32).into_par_iter().for_each(|v| {
                let l = labels[v as usize].load(Ordering::Relaxed);
                let ll = labels[l as usize].load(Ordering::Relaxed);
                if ll < l {
                    labels[v as usize].fetch_min(ll, Ordering::Relaxed);
                    changed.store(true, Ordering::Relaxed);
                }
            });
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
    }

    let num_trees =
        (0..n as u32).filter(|&v| labels[v as usize].load(Ordering::Relaxed) == v).count();
    MstResult { edges: chosen, total_weight, num_trees, rounds, outcome }
}

/// Serial Kruskal oracle returning the forest's total weight.
pub fn mst_weight_kruskal(g: &Csr) -> u64 {
    let mut edges: Vec<(Weight, u32, u32)> = Vec::new();
    for u in 0..g.num_vertices() as u32 {
        for e in g.edge_range(u) {
            let v = g.col_indices()[e];
            if u < v {
                edges.push((g.weight(e as u32), u, v));
            }
        }
    }
    edges.sort_unstable();
    let mut parent: Vec<u32> = (0..g.num_vertices() as u32).collect();
    fn find(p: &mut [u32], mut x: u32) -> u32 {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    let mut total = 0u64;
    for (w, u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
            total += w as u64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d};
    use gunrock_graph::{Coo, GraphBuilder};

    fn check_is_spanning_forest(g: &Csr, r: &MstResult) {
        // chosen edges form a forest connecting each component
        let cc = serial::connected_components(g);
        let n_components = serial::num_components(&cc);
        assert_eq!(r.num_trees, n_components);
        // forest edge count = n_in_components_with_vertices - components
        let n = g.num_vertices();
        assert_eq!(r.edges.len(), n - n_components);
        // edges must come from the graph and touch distinct components
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for &e in &r.edges {
            let (u, v) = (g.edge_source(e), g.edge_dest(e));
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "edge {e} forms a cycle");
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }

    #[test]
    fn hand_checked_diamond() {
        // 0-1 (1), 1-3 (2), 0-2 (5), 2-3 (1): MST = {0-1, 2-3, 1-3} = 4
        let g = GraphBuilder::new()
            .build(Coo::from_weighted_edges(4, &[(0, 1, 1), (1, 3, 2), (0, 2, 5), (2, 3, 1)]));
        let ctx = Context::new(&g);
        let r = mst(&ctx);
        assert_eq!(r.total_weight, 4);
        assert_eq!(r.num_trees, 1);
        check_is_spanning_forest(&g, &r);
    }

    #[test]
    fn matches_kruskal_on_random_weighted_graphs() {
        for seed in 0..4u64 {
            let g = GraphBuilder::new()
                .random_weights(1, 64, seed)
                .build(erdos_renyi(200, 600, seed));
            let ctx = Context::new(&g);
            let r = mst(&ctx);
            assert_eq!(r.total_weight, mst_weight_kruskal(&g), "seed {seed}");
            check_is_spanning_forest(&g, &r);
        }
    }

    #[test]
    fn grid_mst() {
        let g = GraphBuilder::new().random_weights(1, 64, 9).build(grid2d(12, 12, 0.1, 0.0, 9));
        let ctx = Context::new(&g);
        let r = mst(&ctx);
        assert_eq!(r.total_weight, mst_weight_kruskal(&g));
        check_is_spanning_forest(&g, &r);
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let g = GraphBuilder::new().random_weights(1, 10, 3).build(erdos_renyi(200, 100, 3));
        let ctx = Context::new(&g);
        let r = mst(&ctx);
        assert!(r.num_trees > 1);
        assert_eq!(r.total_weight, mst_weight_kruskal(&g));
        check_is_spanning_forest(&g, &r);
    }

    #[test]
    fn iteration_cap_yields_a_safe_sub_forest() {
        let g = GraphBuilder::new().random_weights(1, 64, 5).build(grid2d(20, 20, 0.0, 0.0, 5));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = mst(&ctx);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.rounds, 1);
        // partial forest: acyclic, from the graph, and strictly fewer
        // edges than the full spanning tree on a diameter-40 grid
        let n = g.num_vertices();
        assert!(!r.edges.is_empty());
        assert!(r.edges.len() < n - 1);
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for &e in &r.edges {
            let (u, v) = (g.edge_source(e), g.edge_dest(e));
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "edge {e} forms a cycle");
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
        // every committed edge weight is part of the final MST weight
        assert!(r.total_weight <= mst_weight_kruskal(&g));
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = GraphBuilder::new().build(Coo::new(3));
        let ctx = Context::new(&g);
        let r = mst(&ctx);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 3);
        assert_eq!(r.total_weight, 0);
    }
}
