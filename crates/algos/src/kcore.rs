//! k-core decomposition by iterative peeling — a pure filter-loop
//! primitive: the frontier of "still alive" vertices shrinks as each
//! round filters out vertices whose residual degree falls below k.
//! Demonstrates convergence via a frontier emptying level by level.

use gunrock::prelude::*;
use gunrock_graph::{Csr, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// k-core output.
#[derive(Clone, Debug)]
pub struct KcoreResult {
    /// Core number of each vertex: the largest k such that the vertex
    /// belongs to a subgraph where every vertex has degree >= k.
    pub core_numbers: Vec<u32>,
    /// The degeneracy of the graph (maximum core number).
    pub degeneracy: u32,
    /// Peeling sub-rounds executed.
    pub iterations: u32,
    /// How the peeling loop ended. On a partial outcome every settled
    /// `core_numbers` entry (vertices already peeled) is exact; vertices
    /// still alive hold the highest k fully processed so far, a lower
    /// bound on their true core number.
    pub outcome: RunOutcome,
}

/// Computes core numbers for every vertex.
pub fn k_core(ctx: &Context<'_>) -> KcoreResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    // residual degree of each still-alive vertex
    let degree: Vec<AtomicU32> =
        (0..n as u32).map(|v| AtomicU32::new(g.out_degree(v))).collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut alive = Frontier::full(n);
    let mut k = 0u32;
    let mut iterations = 0u32;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    'enact: while !alive.is_empty() {
        k += 1;
        // peel everything of residual degree < k (cascading)
        loop {
            if let Some(tripped) = guard.check(iterations) {
                outcome = tripped;
                break 'enact;
            }
            iterations += 1;
            ctx.end_iteration(false);
            // vertices that fall out of the k-core this sub-round
            // ORDERING: Relaxed — degree/core cells take monotonic per-cell updates;
            // peeling rounds are separated by join barriers.
            let peeled = filter::filter(
                ctx,
                &alive,
                &VertexCond(|v: u32| degree[v as usize].load(Ordering::Relaxed) < k),
            );
            if peeled.is_empty() {
                break;
            }
            // their core number is k-1; decrement neighbors
            compute::for_each(&peeled, |v| {
                core[v as usize].store(k - 1, Ordering::Relaxed);
                degree[v as usize].store(0, Ordering::Relaxed);
            });
            // pooled: the membership bitmap recycles its word storage
            // across peel rounds instead of reallocating each one
            let peeled_set = frontier_bitmap(ctx, &peeled);
            compute::for_each(&peeled, |v| {
                for &u in g.neighbors(v) {
                    // avoid double-decrement between two same-round peels:
                    // a neighbor that is itself peeled no longer matters
                    if !peeled_set.get(u as usize) {
                        let cell = &degree[u as usize];
                        let mut cur = cell.load(Ordering::Relaxed);
                        while cur > 0 {
                            match cell.compare_exchange_weak(
                                cur,
                                cur - 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(c) => cur = c,
                            }
                        }
                    }
                }
            });
            // survivors continue
            alive =
                filter::filter(ctx, &alive, &VertexCond(|v: u32| !peeled_set.get(v as usize)));
            peeled_set.release(ctx.pool());
        }
        // everything still alive is in the k-core
        compute::for_each(&alive, |v| core[v as usize].store(k, Ordering::Relaxed));
    }
    let core_numbers: Vec<u32> = core.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let degeneracy = core_numbers.iter().copied().max().unwrap_or(0);
    KcoreResult { core_numbers, degeneracy, iterations, outcome }
}

/// Serial peeling oracle (bucket-based, O(n + m)).
pub fn k_core_serial(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v)).collect();
    let maxd = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[degree[v] as usize].push(v as u32);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut k = 0u32;
    for d in 0..=maxd {
        let mut stack = std::mem::take(&mut buckets[d]);
        while let Some(v) = stack.pop() {
            if removed[v as usize] || degree[v as usize] as usize != d {
                // stale bucket entry: re-filed when its degree dropped
                continue;
            }
            k = k.max(d as u32);
            core[v as usize] = k;
            removed[v as usize] = true;
            for &u in g.neighbors(v) {
                if !removed[u as usize] && degree[u as usize] > d as u32 {
                    degree[u as usize] -= 1;
                    let nd = degree[u as usize] as usize;
                    if nd == d {
                        stack.push(u);
                    } else {
                        buckets[nd].push(u);
                    }
                }
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::generators::{erdos_renyi, grid2d, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn k4_is_a_3_core_with_a_tail() {
        // K4 plus a pendant vertex hanging off vertex 0
        let g = GraphBuilder::new().build(Coo::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)],
        ));
        let ctx = Context::new(&g);
        let r = k_core(&ctx);
        assert_eq!(r.core_numbers, vec![3, 3, 3, 3, 1]);
        assert_eq!(r.degeneracy, 3);
    }

    #[test]
    fn path_is_a_1_core() {
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        let ctx = Context::new(&g);
        let r = k_core(&ctx);
        assert_eq!(r.core_numbers, vec![1, 1, 1, 1]);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1)]));
        let ctx = Context::new(&g);
        let r = k_core(&ctx);
        assert_eq!(r.core_numbers, vec![1, 1, 0, 0]);
    }

    #[test]
    fn iteration_cap_bounds_core_numbers_from_below() {
        let g = GraphBuilder::new().build(rmat(8, 8, Default::default(), 5));
        let full = {
            let ctx = Context::new(&g);
            k_core(&ctx)
        };
        assert_eq!(full.outcome, RunOutcome::Converged);
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(2));
        let r = k_core(&ctx);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 2);
        for v in 0..g.num_vertices() {
            assert!(
                r.core_numbers[v] <= full.core_numbers[v],
                "vertex {v}: partial {} exceeds true {}",
                r.core_numbers[v],
                full.core_numbers[v]
            );
        }
    }

    #[test]
    fn matches_serial_peeling_on_suite() {
        let graphs = [
            GraphBuilder::new().build(erdos_renyi(200, 800, 1)),
            GraphBuilder::new().build(rmat(8, 8, Default::default(), 2)),
            GraphBuilder::new().build(grid2d(12, 12, 0.1, 0.05, 3)),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let ctx = Context::new(g);
            let r = k_core(&ctx);
            assert_eq!(r.core_numbers, k_core_serial(g), "graph {i}");
        }
    }
}
