//! Breadth-first search (§5.1).
//!
//! Three variants, matching the paper:
//!
//! * **atomic** — the base implementation "uses atomics during advance to
//!   prevent concurrent vertex discovery": a CAS on the label array makes
//!   each vertex enter the output frontier exactly once; no filter pass
//!   is needed.
//! * **idempotent** — "Gunrock's fastest BFS uses the idempotent advance
//!   operator (thus avoiding the cost of atomics) and uses heuristics
//!   within its filter that reduce the concurrent discovery of child
//!   nodes": plain loads during advance, duplicates culled afterwards by
//!   the history/bitmask filter.
//! * **direction-optimized** — push/pull switching per Beamer (§4.1.1).

use crate::recover::{
    check_failed, expect_len, expect_vertex_ids, malformed, scalar, to_atomic_u32,
};
use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
#[cfg(test)]
use gunrock_graph::Csr;
use gunrock_graph::{EdgeId, VertexId, INFINITY, INVALID_VERTEX};
use std::sync::atomic::{AtomicU32, Ordering};

/// Traversal variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsVariant {
    /// Atomic unique discovery (CAS on labels).
    Atomic,
    /// Idempotent advance + culling filter.
    Idempotent,
    /// Direction-optimized (push/pull) over idempotent-style labeling.
    DirectionOptimized,
    /// Fully-fused single-kernel traversal (§7 kernel fusion): the
    /// visited-bitmap filter runs inside the advance loop, like the
    /// hardwired b40c expansion.
    Fused,
}

impl BfsVariant {
    /// Numeric tag stored in checkpoints.
    fn tag(self) -> u32 {
        match self {
            BfsVariant::Atomic => 0,
            BfsVariant::Idempotent => 1,
            BfsVariant::DirectionOptimized => 2,
            BfsVariant::Fused => 3,
        }
    }

    fn from_tag(tag: u32) -> Option<BfsVariant> {
        match tag {
            0 => Some(BfsVariant::Atomic),
            1 => Some(BfsVariant::Idempotent),
            2 => Some(BfsVariant::DirectionOptimized),
            3 => Some(BfsVariant::Fused),
            _ => None,
        }
    }
}

/// BFS configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsOptions {
    /// Traversal variant (atomic / idempotent / direction-optimized / fused).
    pub variant: BfsVariant,
    /// Workload mapping for push advances.
    pub mode: AdvanceMode,
    /// Record BFS-tree predecessors.
    pub record_predecessors: bool,
    /// Culling heuristics (idempotent variant).
    pub culling: CullingConfig,
    /// Direction-switch thresholds (direction-optimized variant).
    pub policy: DirectionPolicy,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            variant: BfsVariant::Idempotent,
            mode: AdvanceMode::Auto,
            record_predecessors: true,
            culling: CullingConfig::default(),
            policy: DirectionPolicy::default(),
        }
    }
}

impl BfsOptions {
    /// The paper's fastest configuration: idempotent + culling heuristics.
    pub fn fastest() -> Self {
        Self::default()
    }

    /// Direction-optimized traversal (requires a reverse graph in the
    /// context; for undirected graphs the forward graph serves).
    pub fn direction_optimized() -> Self {
        BfsOptions { variant: BfsVariant::DirectionOptimized, ..Self::default() }
    }

    /// Base atomic variant.
    pub fn atomic() -> Self {
        BfsOptions { variant: BfsVariant::Atomic, ..Self::default() }
    }

    /// Fully-fused single-kernel variant.
    pub fn fused() -> Self {
        BfsOptions { variant: BfsVariant::Fused, ..Self::default() }
    }

    /// Overrides the advance workload mapping.
    pub fn with_mode(mut self, mode: AdvanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the direction policy.
    pub fn with_policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// BFS output: depths, optional BFS-tree parents, and traversal stats.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Depth of each vertex from the source (`INFINITY` = unreachable).
    pub labels: Vec<u32>,
    /// BFS-tree parent per vertex (`INVALID_VERTEX` for the source and
    /// unreachable vertices); empty if not recorded.
    pub preds: Vec<VertexId>,
    /// Edges examined during traversal.
    pub edges_examined: u64,
    /// Bulk-synchronous iterations (levels) executed.
    pub iterations: u32,
    /// Iterations that ran in the pull direction.
    pub pull_iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the loop ended (converged, or which execution guard tripped).
    /// Partial outcomes leave `labels`/`preds` consistent for every
    /// completed level and untouched (`INFINITY`/`INVALID_VERTEX`) beyond.
    pub outcome: RunOutcome,
}

impl BfsResult {
    /// Millions of traversed edges per second.
    pub fn mteps(&self) -> f64 {
        Timing { elapsed: self.elapsed, edges_examined: self.edges_examined }.mteps()
    }
}

struct BfsState<'a> {
    labels: &'a [AtomicU32],
    preds: Option<&'a [AtomicU32]>,
}

impl BfsState<'_> {
    #[inline]
    fn set_pred(&self, dst: VertexId, src: VertexId) {
        if let Some(p) = self.preds {
            // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
            // (idempotent discovery); the rayon join barrier publishes each level.
            p[dst as usize].store(src, Ordering::Relaxed);
        }
    }
}

/// Atomic discovery functor: CAS wins exactly once per vertex.
struct AtomicDiscover<'a> {
    st: BfsState<'a>,
    level: u32,
}

impl AdvanceFunctor for AtomicDiscover<'_> {
    #[inline]
    fn cond_edge(&self, _src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        self.st.labels[dst as usize]
            // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
            // (idempotent discovery); the rayon join barrier publishes each level.
            .compare_exchange(INFINITY, self.level, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
    #[inline]
    fn apply_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) {
        self.st.set_pred(dst, src);
    }
}

/// Idempotent expand functor (the Merrill expand/contract split): the
/// advance only tests for "unvisited" and records a candidate parent —
/// labels are NOT set here, so every same-level edge into an unvisited
/// vertex produces a duplicate frontier entry, exactly the redundancy
/// the culling filter exists to remove. Racy pred writes are harmless:
/// all writers are valid same-level parents.
struct IdempotentExpand<'a> {
    st: BfsState<'a>,
}

impl AdvanceFunctor for IdempotentExpand<'_> {
    #[inline]
    fn cond_edge(&self, _src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
        // (idempotent discovery); the rayon join barrier publishes each level.
        self.st.labels[dst as usize].load(Ordering::Relaxed) == INFINITY
    }
    #[inline]
    fn apply_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) {
        self.st.set_pred(dst, src);
    }
}

/// Contract-side labeling: filter survivors receive their depth (the
/// "computation step" fused into the filter kernel).
struct ContractLabel<'a> {
    labels: &'a [AtomicU32],
    level: u32,
}

impl FilterFunctor for ContractLabel<'_> {
    #[inline]
    fn cond(&self, _v: u32) -> bool {
        true
    }
    #[inline]
    fn apply(&self, v: u32) {
        // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
        // (idempotent discovery); the rayon join barrier publishes each level.
        self.labels[v as usize].store(self.level, Ordering::Relaxed);
    }
}

/// Pull-direction discovery: the candidate is unvisited by construction;
/// label and parent are set on first acceptance (pull output has no
/// duplicates, so no contract pass runs).
struct PullDiscover<'a> {
    st: BfsState<'a>,
    level: u32,
}

impl AdvanceFunctor for PullDiscover<'_> {
    #[inline]
    fn cond_edge(&self, _src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
        // (idempotent discovery); the rayon join barrier publishes each level.
        self.st.labels[dst as usize].load(Ordering::Relaxed) == INFINITY
    }
    #[inline]
    fn apply_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) {
        // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
        // (idempotent discovery); the rayon join barrier publishes each level.
        self.st.labels[dst as usize].store(self.level, Ordering::Relaxed);
        self.st.set_pred(dst, src);
    }
}

/// In-flight BFS loop state at an iteration boundary. This is exactly
/// what a checkpoint captures: resuming from a snapshot rebuilds this
/// struct and re-enters [`bfs_run`] as if the guard had never tripped.
struct BfsLoop {
    labels: Vec<AtomicU32>,
    preds: Option<Vec<AtomicU32>>,
    frontier: Frontier,
    level: u32,
    iters: u32,
    pull_iters: u32,
    direction: TraversalDirection,
    unvisited_edges: u64,
}

/// The dense frontier triple of a pull phase, all pool-backed and built
/// lazily at the push→pull switch: `unvisited` is the candidate mask the
/// word sweep maintains *incrementally* (discovered bits are cleared in
/// place — no O(n) re-prune between iterations), `cur` is the current
/// frontier, and `scratch` is the cleared output buffer the next sweep
/// writes into; the two ping-pong like the list frontiers do.
struct PullFrontiers {
    unvisited: PooledBitmap,
    cur: PooledBitmap,
    scratch: PooledBitmap,
}

impl PullFrontiers {
    /// Returns all three bitmaps' word storage to the context's pool
    /// (at the pull→push switch or loop exit).
    fn release(self, ctx: &Context<'_>) {
        self.unvisited.release(ctx.pool());
        self.cur.release(ctx.pool());
        self.scratch.release(ctx.pool());
    }
}

fn direction_tag(d: TraversalDirection) -> u32 {
    match d {
        TraversalDirection::Push => 0,
        TraversalDirection::Pull => 1,
    }
}

/// Rebuilds the visited bitmap from labels, with word storage drawn from
/// the context's pool (release it back when the enact loop exits). At
/// every iteration boundary `visited == {v | labels[v] != INFINITY}`
/// holds for all variants (the contract filter sets both together), so
/// the bitmap itself never needs to be checkpointed.
fn rebuild_visited(ctx: &Context<'_>, labels: &[AtomicU32]) -> PooledBitmap {
    let bm = PooledBitmap::take(ctx.pool(), labels.len());
    for (v, l) in labels.iter().enumerate() {
        // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
        // (idempotent discovery); the rayon join barrier publishes each level.
        if l.load(Ordering::Relaxed) != INFINITY {
            bm.set(v);
        }
    }
    bm
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. Sections: per-vertex `labels`/`preds`, the live `frontier`
/// and (direction-optimized only) `unvisited` candidates, plus packed
/// scalars `[src, level, pull_iters, direction, variant, record_preds]`
/// and the 64-bit `unvisited_edges` counter.
///
/// The `unvisited` section is *derived* from labels here (the loop keeps
/// the candidate set as an incrementally-maintained bitmap, not a list):
/// at any iteration boundary the candidates are exactly the unlabeled
/// vertices, which is also what the snapshot format has always stored.
#[allow(clippy::too_many_arguments)]
fn bfs_checkpoint(
    ctx: &Context<'_>,
    src: VertexId,
    opts: &BfsOptions,
    labels: &[AtomicU32],
    preds: Option<&[AtomicU32]>,
    frontier: &Frontier,
    iters: u32,
    level: u32,
    pull_iters: u32,
    direction: TraversalDirection,
    unvisited_edges: u64,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let unvisited: Vec<u32> = match opts.variant {
        BfsVariant::DirectionOptimized => labels
            .iter()
            .enumerate()
            // ORDERING: Relaxed — boundary state; the rayon join barrier
            // published every label of the completed level.
            .filter(|(_, l)| l.load(Ordering::Relaxed) == INFINITY)
            .map(|(v, _)| v as u32)
            .collect(),
        _ => Vec::new(),
    };
    let mut ckpt = Checkpoint::new("bfs", iters);
    ckpt.push_u32("labels", unwrap_atomic_u32(labels));
    ckpt.push_u32("preds", preds.map(unwrap_atomic_u32).unwrap_or_default());
    ckpt.push_u32("frontier", frontier.as_slice().to_vec());
    ckpt.push_u32("unvisited", unvisited);
    ckpt.push_u32(
        "scalars",
        vec![
            src,
            level,
            pull_iters,
            direction_tag(direction),
            opts.variant.tag(),
            opts.record_predecessors as u32,
        ],
    );
    ckpt.push_u64("counters", vec![unvisited_edges]);
    ctx.save_checkpoint(&ckpt);
}

/// Runs BFS from `src`. Direction-optimized traversal requires
/// `ctx.reverse` (the forward graph itself for undirected graphs).
pub fn bfs(ctx: &Context<'_>, src: VertexId, opts: BfsOptions) -> BfsResult {
    let n = ctx.num_vertices();
    assert!((src as usize) < n, "source out of range");
    let labels = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — any winning parent/label is a valid BFS tree edge
    // (idempotent discovery); the rayon join barrier publishes each level.
    labels[src as usize].store(0, Ordering::Relaxed);
    let st = BfsLoop {
        labels,
        preds: opts.record_predecessors.then(|| atomic_u32_vec(n, INVALID_VERTEX)),
        frontier: Frontier::single(src),
        level: 0,
        iters: 0,
        pull_iters: 0,
        direction: TraversalDirection::Push,
        unvisited_edges: ctx.graph.num_edges() as u64 - ctx.graph.out_degree(src) as u64,
    };
    bfs_run(ctx, src, opts, st)
}

/// Resumes BFS from a `gunrock-ckpt/v1` snapshot. The checkpoint's
/// variant, source, and recorded-predecessor setting override `opts`;
/// workload mapping and heuristics still come from `opts`.
pub fn bfs_resume(
    ctx: &Context<'_>,
    opts: BfsOptions,
    ckpt: &Checkpoint,
) -> Result<BfsResult, GunrockError> {
    ckpt.expect_primitive("bfs")?;
    let n = ctx.num_vertices();
    let labels = ckpt.u32s("labels")?;
    expect_len(labels.len(), n, "labels")?;
    let preds = ckpt.u32s("preds")?;
    let frontier = ckpt.u32s("frontier")?;
    expect_vertex_ids(frontier, n, "frontier")?;
    // The unvisited section is validated for format integrity but not
    // carried into the loop: the pull phase derives its candidate bitmap
    // from the labels' complement, which is the same set.
    let unvisited = ckpt.u32s("unvisited")?;
    expect_vertex_ids(unvisited, n, "unvisited")?;
    let scalars = ckpt.u32s("scalars")?;
    let counters = ckpt.u64s("counters")?;
    let src = scalar(scalars, 0, "src")?;
    if src as usize >= n {
        return Err(malformed(format!("source {src} out of range for {n} vertices")));
    }
    let level = scalar(scalars, 1, "level")?;
    let pull_iters = scalar(scalars, 2, "pull_iterations")?;
    let direction = match scalar(scalars, 3, "direction")? {
        0 => TraversalDirection::Push,
        1 => TraversalDirection::Pull,
        other => return Err(malformed(format!("unknown direction tag {other}"))),
    };
    let variant = scalar(scalars, 4, "variant")?;
    let variant = BfsVariant::from_tag(variant)
        .ok_or_else(|| malformed(format!("unknown BFS variant tag {variant}")))?;
    let record_predecessors = scalar(scalars, 5, "record_predecessors")? == 1;
    if record_predecessors {
        expect_len(preds.len(), n, "preds")?;
    }
    let opts = BfsOptions { variant, record_predecessors, ..opts };
    let st = BfsLoop {
        labels: to_atomic_u32(labels),
        preds: record_predecessors.then(|| to_atomic_u32(preds)),
        frontier: Frontier::from_vec(frontier.to_vec()),
        level,
        iters: ckpt.iteration(),
        pull_iters,
        direction,
        unvisited_edges: counters.first().copied().unwrap_or(0),
    };
    let r = bfs_run(ctx, src, opts, st);
    check_failed(ctx, r.outcome, r)
}

/// The enact loop proper, starting from an arbitrary iteration-boundary
/// state (fresh from [`bfs`] or restored by [`bfs_resume`]).
fn bfs_run(ctx: &Context<'_>, src: VertexId, opts: BfsOptions, st: BfsLoop) -> BfsResult {
    let n = ctx.num_vertices();
    let start = std::time::Instant::now();
    // Budget admission: demote the advance mode (or poison with a
    // structured BudgetExceeded) before the first operator launches.
    let opts = BfsOptions { mode: crate::admission::admit(ctx, "bfs", opts.mode), ..opts };
    let BfsLoop {
        labels,
        preds,
        mut frontier,
        mut level,
        iters: mut enactor_iters,
        mut pull_iters,
        mut direction,
        mut unvisited_edges,
    } = st;
    // Admission may have poisoned the context (even the lean estimate
    // exceeds the budget). Bail before the variant setup below checks
    // any buffers out of the pool — those takes sit outside the
    // isolation boundary and must never fire on a poisoned run.
    if ctx.is_poisoned() {
        ctx.recycle(frontier);
        return BfsResult {
            labels: unwrap_atomic_u32(&labels),
            preds: preds.map(|p| unwrap_atomic_u32(&p)).unwrap_or_default(),
            edges_examined: ctx.counters.edges(),
            iterations: enactor_iters,
            pull_iterations: pull_iters,
            elapsed: start.elapsed(),
            outcome: RunOutcome::Failed,
        };
    }
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    // Periodic snapshot at the iteration boundary, plus an exit snapshot
    // when a guard trips — but never from a poisoned (Failed) run, whose
    // state may be inconsistent mid-operator.
    macro_rules! boundary {
        () => {
            if ctx.checkpoint_due(enactor_iters) {
                bfs_checkpoint(
                    ctx,
                    src,
                    &opts,
                    &labels,
                    preds.as_deref(),
                    &frontier,
                    enactor_iters,
                    level,
                    pull_iters,
                    direction,
                    unvisited_edges,
                );
            }
            if let Some(tripped) = guard.check(enactor_iters) {
                outcome = tripped;
                if tripped != RunOutcome::Failed {
                    bfs_checkpoint(
                        ctx,
                        src,
                        &opts,
                        &labels,
                        preds.as_deref(),
                        &frontier,
                        enactor_iters,
                        level,
                        pull_iters,
                        direction,
                        unvisited_edges,
                    );
                }
                break;
            }
        };
    }

    match opts.variant {
        BfsVariant::Atomic => {
            while !frontier.is_empty() {
                boundary!();
                level += 1;
                let f = AtomicDiscover {
                    st: BfsState { labels: &labels, preds: preds.as_deref() },
                    level,
                };
                let spec = AdvanceSpec::v2v().with_mode(opts.mode);
                // ping-pong: the retired frontier's storage goes back to
                // the pool and returns as the next advance's output buffer
                let next = advance::advance(ctx, &frontier, spec, &f);
                ctx.recycle(std::mem::replace(&mut frontier, next));
                enactor_iters += 1;
                ctx.end_iteration(false);
            }
        }
        BfsVariant::Idempotent => {
            // the visited rebuild checks a bitmap out of the pool between
            // operators; run it isolated so a denied checkout (injected
            // `pool-alloc` or a budget race) fails the run instead of
            // unwinding out of the enactor
            if let Some(visited) = ctx.isolated_setup("setup", || rebuild_visited(ctx, &labels))
            {
                while !frontier.is_empty() {
                    boundary!();
                    level += 1;
                    let f = IdempotentExpand {
                        st: BfsState { labels: &labels, preds: preds.as_deref() },
                    };
                    let spec = AdvanceSpec::v2v().with_mode(opts.mode);
                    let raw = advance::advance(ctx, &frontier, spec, &f);
                    let next = filter::culling::filter_with_culling(
                        ctx,
                        &raw,
                        &visited,
                        &ContractLabel { labels: &labels, level },
                        opts.culling,
                    );
                    // both the raw intermediate and the retired frontier go
                    // back to the pool for the next iteration
                    ctx.recycle(raw);
                    ctx.recycle(std::mem::replace(&mut frontier, next));
                    enactor_iters += 1;
                    ctx.end_iteration(false);
                }
                visited.release(ctx.pool());
            }
        }
        BfsVariant::Fused => {
            if let Some(visited) = ctx.isolated_setup("setup", || rebuild_visited(ctx, &labels))
            {
                while !frontier.is_empty() {
                    boundary!();
                    level += 1;
                    // fused: cond tests unvisited, apply labels + sets pred —
                    // all inside the single advance kernel; the bitmap
                    // test-and-set guarantees the apply runs once per vertex
                    let f = PullDiscover {
                        st: BfsState { labels: &labels, preds: preds.as_deref() },
                        level,
                    };
                    let next = advance::fused::advance_filter_fused(
                        ctx,
                        &frontier,
                        AdvanceSpec::v2v(),
                        &f,
                        &visited,
                    );
                    ctx.recycle(std::mem::replace(&mut frontier, next));
                    enactor_iters += 1;
                    ctx.end_iteration(false);
                }
                visited.release(ctx.pool());
            }
        }
        BfsVariant::DirectionOptimized => 'arm: {
            let Some(visited) = ctx.isolated_setup("setup", || rebuild_visited(ctx, &labels))
            else {
                // denied checkout during setup: the context is poisoned,
                // skip the loop and let the tail report the run `Failed`
                break 'arm;
            };
            let mut pull: Option<PullFrontiers> = None;
            while !frontier.is_empty() {
                boundary!();
                level += 1;
                let m_f =
                    advance::push::frontier_neighbor_count(ctx, &frontier, InputKind::Vertices);
                let prev_direction = direction;
                direction =
                    opts.policy.decide(direction, m_f, unvisited_edges, frontier.len(), n);
                // Degradation rung: entering a pull phase costs three
                // dense O(n/64)-word bitmaps (candidates + ping-pong
                // pair). Under budget pressure, stay push — the list
                // frontiers already in hand cost nothing new. An
                // in-flight pull phase keeps its paid-for bitmaps.
                if direction == TraversalDirection::Pull && pull.is_none() {
                    let need =
                        3 * gunrock_engine::budget::pooled_bytes(n.div_ceil(64) as u64, 8);
                    if !ctx.pool().can_reserve(need) {
                        let headroom = ctx.budget().map(|b| b.headroom()).unwrap_or(0);
                        ctx.record_degrade(
                            "advance",
                            "pull",
                            "push",
                            format!(
                                "pull bitmaps need {need} bytes, budget headroom {headroom}"
                            ),
                        );
                        direction = TraversalDirection::Push;
                    }
                }
                if direction != prev_direction {
                    if let Some(sink) = ctx.sink() {
                        // only built when instrumented: the reason string
                        // names the hysteresis inequality that fired
                        let (from, to, reason) = match direction {
                            TraversalDirection::Pull => (
                                StepDirection::Push,
                                StepDirection::Pull,
                                format!(
                                    "m_f={} > m_u={}/alpha={} and n_f={} >= n={}/beta={}",
                                    m_f,
                                    unvisited_edges,
                                    opts.policy.alpha,
                                    frontier.len(),
                                    n,
                                    opts.policy.beta
                                ),
                            ),
                            TraversalDirection::Push => (
                                StepDirection::Pull,
                                StepDirection::Push,
                                format!(
                                    "n_f={} < n={}/beta={}",
                                    frontier.len(),
                                    n,
                                    opts.policy.beta
                                ),
                            ),
                        };
                        sink.record_switch(from, to, reason);
                    }
                }
                let next = match direction {
                    TraversalDirection::Push => {
                        // leaving a pull phase: the dense frontiers go
                        // back to the pool until the next switch
                        if let Some(p) = pull.take() {
                            p.release(ctx);
                        }
                        let f = IdempotentExpand {
                            st: BfsState { labels: &labels, preds: preds.as_deref() },
                        };
                        let spec = AdvanceSpec::v2v().with_mode(opts.mode);
                        let raw = advance::advance(ctx, &frontier, spec, &f);
                        let contracted = filter::culling::filter_with_culling(
                            ctx,
                            &raw,
                            &visited,
                            &ContractLabel { labels: &labels, level },
                            opts.culling,
                        );
                        ctx.recycle(raw);
                        contracted
                    }
                    TraversalDirection::Pull => {
                        pull_iters += 1;
                        let f = PullDiscover {
                            st: BfsState { labels: &labels, preds: preds.as_deref() },
                            level,
                        };
                        // lazy Beamer-switch conversion: only here does
                        // the list frontier densify, and the candidate
                        // mask is the visited complement — no O(n)
                        // re-prune ever runs inside the phase
                        if pull.is_none() {
                            // the phase's bitmaps are pool checkouts
                            // between operators — build them isolated so
                            // a denied take ends the run instead of
                            // unwinding out of the enactor
                            match ctx.isolated_setup("setup", || {
                                let mut unvisited = PooledBitmap::take(ctx.pool(), n);
                                unvisited.fill_complement(&visited);
                                PullFrontiers {
                                    unvisited,
                                    cur: frontier_bitmap(ctx, &frontier),
                                    scratch: PooledBitmap::take(ctx.pool(), n),
                                }
                            }) {
                                Some(built) => pull = Some(built),
                                None => break,
                            }
                        }
                        let Some(fr) = pull.as_mut() else { break };
                        advance_pull_sweep(
                            ctx,
                            &mut fr.unvisited,
                            &fr.cur,
                            &mut fr.scratch,
                            &f,
                        );
                        // ping-pong: the sweep's output becomes the next
                        // iteration's in-frontier
                        std::mem::swap(&mut fr.cur, &mut fr.scratch);
                        // merge discoveries into the shared visited bitmap
                        // (so a later push iteration culls correctly) and
                        // extract the list frontier for policy/boundary use
                        let out = filter::culling::filter_with_culling_bitmap(
                            ctx,
                            &fr.cur,
                            &visited,
                            &VertexCond(|_| true),
                            CullingConfig { history: false, history_bits: 0, bitmask: true },
                        );
                        fr.scratch.clear_all();
                        out
                    }
                };
                unvisited_edges = unvisited_edges.saturating_sub(
                    advance::push::frontier_neighbor_count(ctx, &next, InputKind::Vertices),
                );
                ctx.end_iteration(direction == TraversalDirection::Pull);
                enactor_iters += 1;
                ctx.recycle(std::mem::replace(&mut frontier, next));
            }
            if let Some(p) = pull.take() {
                p.release(ctx);
            }
            visited.release(ctx.pool());
        }
    }

    // A cooperative abort can truncate an operator's output to an empty
    // frontier, making the loop exit look like natural convergence; the
    // guard has the final say. (A run that genuinely converged in the
    // same instant the flag rose is conservatively reported as cancelled
    // — its exit snapshot holds complete state, so a resume is trivial.)
    if outcome == RunOutcome::Converged && ctx.abort_requested() {
        if let Some(tripped) = guard.check(enactor_iters) {
            outcome = tripped;
            if tripped != RunOutcome::Failed {
                bfs_checkpoint(
                    ctx,
                    src,
                    &opts,
                    &labels,
                    preds.as_deref(),
                    &frontier,
                    enactor_iters,
                    level,
                    pull_iters,
                    direction,
                    unvisited_edges,
                );
            }
        }
    }
    // the loop's last frontier still owns pooled storage; return it so
    // a re-run on this context starts with a warm pool
    ctx.recycle(frontier);
    // a panic that emptied the frontier must not read as convergence
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    BfsResult {
        labels: unwrap_atomic_u32(&labels),
        preds: preds.map(|p| unwrap_atomic_u32(&p)).unwrap_or_default(),
        edges_examined: ctx.counters.edges(),
        iterations: enactor_iters,
        pull_iterations: pull_iters,
        elapsed: start.elapsed(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, rmat};
    use gunrock_graph::GraphBuilder;

    fn suite() -> Vec<Csr> {
        vec![
            GraphBuilder::new().build(erdos_renyi(400, 1200, 1)),
            GraphBuilder::new().build(rmat(9, 8, Default::default(), 2)),
            GraphBuilder::new().build(grid2d(20, 20, 0.1, 0.0, 3)),
            GraphBuilder::new().build(erdos_renyi(300, 150, 4)), // disconnected
        ]
    }

    fn check_parents(g: &Csr, labels: &[u32], preds: &[VertexId], src: VertexId) {
        for v in 0..g.num_vertices() {
            if v as u32 == src || labels[v] == INFINITY {
                assert_eq!(preds[v], INVALID_VERTEX, "vertex {v}");
            } else {
                let p = preds[v] as usize;
                assert_eq!(labels[p] + 1, labels[v], "vertex {v} parent {p}");
                assert!(g.neighbors(p as u32).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn all_variants_match_serial_depths() {
        for (i, g) in suite().iter().enumerate() {
            let want = serial::bfs(g, 0);
            for variant in [
                BfsVariant::Atomic,
                BfsVariant::Idempotent,
                BfsVariant::DirectionOptimized,
                BfsVariant::Fused,
            ] {
                let ctx = Context::new(g).with_reverse(g);
                let opts = BfsOptions { variant, ..Default::default() };
                let r = bfs(&ctx, 0, opts);
                assert_eq!(r.labels, want, "graph {i} variant {variant:?}");
                check_parents(g, &r.labels, &r.preds, 0);
            }
        }
    }

    #[test]
    fn all_advance_modes_agree() {
        let g = GraphBuilder::new().build(rmat(9, 16, Default::default(), 7));
        let want = serial::bfs(&g, 3);
        for mode in [
            AdvanceMode::ThreadMapped,
            AdvanceMode::Twc,
            AdvanceMode::LoadBalanced,
            AdvanceMode::Auto,
        ] {
            let ctx = Context::new(&g);
            let r = bfs(&ctx, 3, BfsOptions::atomic().with_mode(mode));
            assert_eq!(r.labels, want, "mode {mode:?}");
        }
    }

    #[test]
    fn direction_optimized_pulls_on_scale_free() {
        let g = GraphBuilder::new().build(rmat(11, 16, Default::default(), 5));
        let ctx = Context::new(&g).with_reverse(&g);
        let r = bfs(&ctx, 0, BfsOptions::direction_optimized());
        assert!(r.pull_iterations > 0, "expected at least one pull iteration");
        assert_eq!(r.labels, serial::bfs(&g, 0));
    }

    #[test]
    fn direction_optimized_saves_edge_visits() {
        let g = GraphBuilder::new().build(rmat(11, 16, Default::default(), 5));
        let push = {
            let ctx = Context::new(&g).with_reverse(&g);
            bfs(&ctx, 0, BfsOptions::fastest())
        };
        let opt = {
            let ctx = Context::new(&g).with_reverse(&g);
            bfs(&ctx, 0, BfsOptions::direction_optimized())
        };
        assert!(
            opt.edges_examined < push.edges_examined,
            "pull should skip edges: {} vs {}",
            opt.edges_examined,
            push.edges_examined
        );
    }

    #[test]
    fn without_predecessors_preds_is_empty() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 300, 9));
        let ctx = Context::new(&g);
        let r = bfs(&ctx, 0, BfsOptions { record_predecessors: false, ..Default::default() });
        assert!(r.preds.is_empty());
        assert_eq!(r.labels, serial::bfs(&g, 0));
    }

    #[test]
    fn source_only_graph() {
        let g = GraphBuilder::new().build(gunrock_graph::Coo::new(3));
        let ctx = Context::new(&g);
        let r = bfs(&ctx, 1, BfsOptions::default());
        assert_eq!(r.labels, vec![INFINITY, 0, INFINITY]);
        assert_eq!(r.iterations, 1); // one advance finding nothing
    }

    #[test]
    fn stats_are_populated() {
        let g = GraphBuilder::new().build(erdos_renyi(500, 2000, 11));
        let ctx = Context::new(&g);
        let r = bfs(&ctx, 0, BfsOptions::default());
        assert!(r.edges_examined > 0);
        assert!(r.iterations > 0);
        assert!(r.mteps() >= 0.0);
        assert_eq!(r.outcome, RunOutcome::Converged);
    }

    #[test]
    fn iteration_cap_yields_partial_depths_in_every_variant() {
        // path graph needs many levels; a 1-iteration cap must stop each
        // variant after one level with the completed level intact
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(20, &edges));
        for variant in [
            BfsVariant::Atomic,
            BfsVariant::Idempotent,
            BfsVariant::DirectionOptimized,
            BfsVariant::Fused,
        ] {
            let ctx = Context::new(&g)
                .with_reverse(&g)
                .with_policy(RunPolicy::unbounded().max_iterations(1));
            let r = bfs(&ctx, 0, BfsOptions { variant, ..Default::default() });
            assert_eq!(r.outcome, RunOutcome::IterationCapped, "{variant:?}");
            assert_eq!(r.iterations, 1, "{variant:?}");
            // level 1 is complete, deeper levels untouched
            assert_eq!(r.labels[0], 0, "{variant:?}");
            assert_eq!(r.labels[1], 1, "{variant:?}");
            assert!(
                r.labels[2..].iter().all(|&l| l == INFINITY),
                "{variant:?}: {:?}",
                &r.labels[..5]
            );
        }
    }

    #[test]
    fn pull_sweep_trace_decrements_candidates_incrementally() {
        // Regression: the sweep must maintain the candidate set in place
        // (clearing discovered bits) rather than re-pruning all n
        // vertices each pull iteration, and the trace must report the
        // true candidate count, not the input frontier length.
        let g = GraphBuilder::new().build(rmat(11, 16, Default::default(), 5));
        let ctx = Context::new(&g).with_reverse(&g).with_stats();
        let r = bfs(&ctx, 0, BfsOptions::direction_optimized());
        assert!(r.pull_iterations > 0);
        let steps = ctx.run_stats().steps;
        let sweeps: Vec<_> = steps.iter().filter(|s| s.strategy == "pull_sweep").collect();
        assert!(!sweeps.is_empty(), "direction-optimized run must record sweep steps");
        for w in sweeps.windows(2) {
            if w[1].iteration == w[0].iteration + 1 {
                assert_eq!(
                    w[1].candidates_len,
                    w[0].candidates_len - w[0].output_len,
                    "iteration {}: candidates must shrink by exactly the discovered count",
                    w[1].iteration
                );
            }
        }
        assert!(
            sweeps.iter().any(|s| s.candidates_len != s.input_len),
            "candidates_len must track the unvisited set, not echo input_len"
        );
    }

    #[test]
    fn warm_direction_optimized_runs_allocate_nothing() {
        // Regression: the pull path once built a fresh bitmap per
        // iteration behind the pool's back. In steady state every buffer
        // must come from the pool, so a warm run adds zero heap
        // allocations.
        let g = GraphBuilder::new().build(rmat(11, 16, Default::default(), 5));
        let ctx = Context::new(&g).with_reverse(&g);
        let cold = bfs(&ctx, 0, BfsOptions::direction_optimized());
        assert!(cold.pull_iterations > 0);
        let after_cold = ctx.pool().stats().allocations;
        let warm = bfs(&ctx, 0, BfsOptions::direction_optimized());
        assert_eq!(warm.labels, cold.labels);
        assert_eq!(
            ctx.pool().stats().allocations,
            after_cold,
            "warm direction-optimized run must be satisfied entirely from the pool"
        );
    }

    #[test]
    fn budget_pressure_degrades_pull_to_push_and_still_converges() {
        use gunrock_engine::budget::{estimate_bytes, pooled_bytes, MemoryBudget};
        use std::sync::Arc;
        // A short path in a sea of isolated vertices: frontiers stay
        // tiny (push iterations cost a few KB) while the pull bitmaps
        // scale with n (3 x 32 KB here) — the exact shape where the
        // pull->push rung saves a run that would otherwise hit the wall.
        let n: usize = 1 << 18;
        let edges: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(n, &edges));
        let full = estimate_bytes("bfs", n as u64, g.num_edges() as u64);
        let budget = Arc::new(MemoryBudget::new(full));
        let ctx =
            Context::new(&g).with_reverse(&g).with_stats().with_budget(Arc::clone(&budget));
        let pull_need = 3 * pooled_bytes((n as u64).div_ceil(64), 8);
        // Squeeze the budget (as concurrent jobs on a shared pool
        // would) until the remaining headroom cannot cover the pull
        // bitmaps but still fits the small push buffers.
        let leave = pull_need + 4 * 1024;
        let mut held = Vec::new();
        while budget.headroom() > leave {
            let excess = budget.headroom() - leave;
            let mut elems = (excess / 4).next_power_of_two();
            if elems * 4 > excess {
                elems /= 2;
            }
            if elems < 64 {
                break;
            }
            held.push(ctx.pool().take_u32(elems as usize));
        }
        // A policy that would pull from the first level if it could.
        let opts = BfsOptions::direction_optimized()
            .with_policy(DirectionPolicy { alpha: 1e18, beta: 1e18 });
        let r = bfs(&ctx, 0, opts);
        assert_eq!(r.outcome, RunOutcome::Converged, "degraded run still finishes");
        assert_eq!(r.labels, serial::bfs(&g, 0));
        assert_eq!(r.pull_iterations, 0, "every pull attempt was degraded to push");
        let stats = ctx.run_stats();
        assert!(
            stats.degrades.iter().any(|d| d.from == "pull" && d.to == "push"),
            "expected pull->push degrade events, got {:?}",
            stats.degrades
        );
        for buf in held {
            ctx.pool().put_u32(buf);
        }
    }

    #[test]
    fn pre_tripped_cancel_returns_consistent_source_only_state() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = GraphBuilder::new().build(erdos_renyi(200, 600, 13));
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let r = bfs(&ctx, 5, BfsOptions::default());
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.labels[5], 0);
        assert!(r.labels.iter().enumerate().all(|(v, &l)| if v == 5 {
            l == 0
        } else {
            l == INFINITY
        }));
        assert!(r.preds.iter().all(|&p| p == INVALID_VERTEX));
    }
}
