//! Failure-aware wrappers and checkpoint plumbing shared by the five
//! paper primitives.
//!
//! Each primitive keeps its plain entry point (`bfs`, `sssp`, ...)
//! returning best-so-far results plus a [`RunOutcome`]; the `try_*`
//! wrappers here convert a `Failed` outcome into the structured
//! [`GunrockError`] that poisoned the context, for callers that want
//! `Result` semantics. The small helpers below convert between the
//! checkpointed plain vectors and the atomic working form primitives
//! use.

use crate::bc::{bc, bc_resume, BcOptions, BcResult};
use crate::bfs::{bfs, bfs_resume, BfsOptions, BfsResult};
use crate::cc::{cc, cc_resume, CcResult};
use crate::msbfs::{msbfs_resume, MsbfsResult};
use crate::msppr::{msppr_resume, MspprResult};
use crate::pagerank::{pagerank, pagerank_resume, PrOptions, PrResult};
use crate::sssp::{sssp, sssp_resume, SsspOptions, SsspResult};
use gunrock::prelude::*;
use gunrock_engine::atomics::AtomicF64;
use gunrock_graph::VertexId;
use std::sync::atomic::AtomicU32;

/// Rebuilds the atomic working form from a checkpointed vector.
pub(crate) fn to_atomic_u32(values: &[u32]) -> Vec<AtomicU32> {
    values.iter().map(|&v| AtomicU32::new(v)).collect()
}

/// Rebuilds the atomic working form from a checkpointed vector.
pub(crate) fn to_atomic_f64(values: &[f64]) -> Vec<AtomicF64> {
    values.iter().map(|&v| AtomicF64::new(v)).collect()
}

/// Reads one named scalar out of a checkpoint's scalar section,
/// reporting a malformed checkpoint instead of panicking when the
/// section is shorter than this build expects.
pub(crate) fn scalar(scalars: &[u32], idx: usize, what: &str) -> Result<u32, GunrockError> {
    scalars.get(idx).copied().ok_or_else(|| {
        GunrockError::Checkpoint(CheckpointError::Malformed(format!(
            "scalar section too short: missing {what}"
        )))
    })
}

/// A malformed-checkpoint error with a human-readable reason.
pub(crate) fn malformed(msg: impl Into<String>) -> GunrockError {
    GunrockError::Checkpoint(CheckpointError::Malformed(msg.into()))
}

/// Rejects checkpointed id lists that reference vertices beyond this
/// graph — the checksum only proves integrity, not that the checkpoint
/// was written against the same graph.
pub(crate) fn expect_vertex_ids(ids: &[u32], n: usize, what: &str) -> Result<(), GunrockError> {
    match ids.iter().find(|&&v| v as usize >= n) {
        Some(&v) => {
            Err(malformed(format!("{what} contains vertex {v} but the graph has {n} vertices")))
        }
        None => Ok(()),
    }
}

/// Validates that a checkpointed per-vertex section matches the graph
/// the run was restarted against.
pub(crate) fn expect_len(len: usize, n: usize, what: &str) -> Result<(), GunrockError> {
    if len == n {
        Ok(())
    } else {
        Err(GunrockError::Checkpoint(CheckpointError::Malformed(format!(
            "{what} has {len} entries but the graph has {n} vertices"
        ))))
    }
}

/// The failure that poisoned `ctx`. Falls back to a synthesized error
/// when the slot was already drained (the poison flag itself never
/// resets, so the outcome is still `Failed`).
pub(crate) fn failure_of(ctx: &Context<'_>) -> GunrockError {
    ctx.take_failure().unwrap_or(GunrockError::OperatorPanic {
        operator: "unknown",
        iteration: 0,
        payload: "failure already taken".to_string(),
    })
}

/// Converts a `Failed` outcome into the poisoning error.
pub(crate) fn check_failed<T>(
    ctx: &Context<'_>,
    outcome: RunOutcome,
    result: T,
) -> Result<T, GunrockError> {
    if outcome == RunOutcome::Failed {
        Err(failure_of(ctx))
    } else {
        Ok(result)
    }
}

/// [`bfs`] with `Result` semantics: `Err` carries the structured
/// failure when an operator panicked or allocation retries ran out.
pub fn try_bfs(
    ctx: &Context<'_>,
    src: VertexId,
    opts: BfsOptions,
) -> Result<BfsResult, GunrockError> {
    let r = bfs(ctx, src, opts);
    check_failed(ctx, r.outcome, r)
}

/// [`sssp`] with `Result` semantics.
pub fn try_sssp(
    ctx: &Context<'_>,
    src: VertexId,
    opts: SsspOptions,
) -> Result<SsspResult, GunrockError> {
    let r = sssp(ctx, src, opts);
    check_failed(ctx, r.outcome, r)
}

/// [`bc`] with `Result` semantics.
pub fn try_bc(
    ctx: &Context<'_>,
    src: VertexId,
    opts: BcOptions,
) -> Result<BcResult, GunrockError> {
    let r = bc(ctx, src, opts);
    check_failed(ctx, r.outcome, r)
}

/// [`cc`] with `Result` semantics.
pub fn try_cc(ctx: &Context<'_>) -> Result<CcResult, GunrockError> {
    let r = cc(ctx);
    check_failed(ctx, r.outcome, r)
}

/// [`pagerank`] with `Result` semantics.
pub fn try_pagerank(ctx: &Context<'_>, opts: PrOptions) -> Result<PrResult, GunrockError> {
    let r = pagerank(ctx, opts);
    check_failed(ctx, r.outcome, r)
}

/// Loads a `gunrock-ckpt/v1` file and resumes whichever primitive wrote
/// it. The options structs configure the *continued* portion of the run;
/// state recorded in the checkpoint (source, variant, frontier, labels)
/// always wins over conflicting options.
pub enum ResumedRun {
    /// A resumed BFS run.
    Bfs(BfsResult),
    /// A resumed SSSP run.
    Sssp(SsspResult),
    /// A resumed BC run.
    Bc(BcResult),
    /// A resumed CC run.
    Cc(CcResult),
    /// A resumed PageRank run.
    PageRank(PrResult),
    /// A resumed multi-source batched BFS run.
    Msbfs(MsbfsResult),
    /// A resumed multi-source PPR run.
    Msppr(MspprResult),
}

impl ResumedRun {
    /// The run outcome, whichever primitive produced it.
    pub fn outcome(&self) -> RunOutcome {
        match self {
            ResumedRun::Bfs(r) => r.outcome,
            ResumedRun::Sssp(r) => r.outcome,
            ResumedRun::Bc(r) => r.outcome,
            ResumedRun::Cc(r) => r.outcome,
            ResumedRun::PageRank(r) => r.outcome,
            ResumedRun::Msbfs(r) => r.outcome,
            ResumedRun::Msppr(r) => r.outcome,
        }
    }
}

/// Resumes a checkpoint by primitive name (the CLI's `--resume` path).
pub fn resume(ctx: &Context<'_>, ckpt: &Checkpoint) -> Result<ResumedRun, GunrockError> {
    match ckpt.primitive() {
        "bfs" => bfs_resume(ctx, BfsOptions::default(), ckpt).map(ResumedRun::Bfs),
        "sssp" => sssp_resume(ctx, SsspOptions::default(), ckpt).map(ResumedRun::Sssp),
        "bc" => bc_resume(ctx, BcOptions::default(), ckpt).map(ResumedRun::Bc),
        "cc" => cc_resume(ctx, ckpt).map(ResumedRun::Cc),
        "pagerank" => {
            pagerank_resume(ctx, PrOptions::default(), ckpt).map(ResumedRun::PageRank)
        }
        "msbfs" => msbfs_resume(ctx, ckpt).map(ResumedRun::Msbfs),
        "msppr" => msppr_resume(ctx, ckpt).map(ResumedRun::Msppr),
        other => Err(GunrockError::Checkpoint(CheckpointError::Malformed(format!(
            "unknown primitive {other:?} in checkpoint"
        )))),
    }
}
