//! Triangle counting over an edge frontier — a classic Gunrock-family
//! primitive showcasing the edge-centric side of the abstraction: the
//! frontier is all edges, the computation is a sorted neighbor-list
//! intersection per edge (possible because the builder sorts adjacency).

use gunrock::prelude::*;
use gunrock_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Triangle counting output.
#[derive(Clone, Debug)]
pub struct TriangleResult {
    /// Total triangles in the undirected graph (each counted once).
    pub total: u64,
    /// Triangles incident to each vertex.
    pub per_vertex: Vec<u64>,
    /// How the run ended. Triangle counting is two compute passes, not
    /// an iterative loop, so the guard is checked between passes: a trip
    /// before the first pass returns all zeros; a trip between passes
    /// returns the exact total with empty `per_vertex`.
    pub outcome: RunOutcome,
}

/// Size of the intersection of two ascending slices.
fn intersect_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Counts triangles in an undirected graph with sorted adjacency (the
/// builder's default output). The total is found over the all-edges
/// frontier: each triangle `{u < v < w}` is discovered exactly once at
/// its edge `(u, v)` by intersecting the two neighbor lists above `v`.
/// Per-vertex counts come from a second compute pass: at vertex `x`,
/// a triangle is a neighbor pair `(y, z)`, `y < z`, that is adjacent.
pub fn triangle_count(ctx: &Context<'_>) -> TriangleResult {
    let g = ctx.graph;
    debug_assert!(
        (0..g.num_vertices() as u32).all(|v| g.neighbors(v).windows(2).all(|w| w[0] < w[1])),
        "triangle counting requires sorted, deduplicated adjacency"
    );
    let guard = ctx.guard();
    if let Some(tripped) = guard.check(0) {
        return TriangleResult { total: 0, per_vertex: Vec::new(), outcome: tripped };
    }
    // Pass 1: total, over the edge frontier.
    let edge_frontier = Frontier::full(g.num_edges());
    let total = AtomicU64::new(0);
    compute::for_each(&edge_frontier, |e| {
        let u = g.edge_source(e);
        let v = g.edge_dest(e);
        if u >= v {
            return; // each undirected edge handled once, ordered
        }
        let above = |list: &[VertexId]| -> usize { list.partition_point(|&x| x <= v) };
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let c = intersect_count(&nu[above(nu)..], &nv[above(nv)..]);
        if c > 0 {
            // ORDERING: Relaxed — a commutative sum, read only after the join barrier.
            total.fetch_add(c, Ordering::Relaxed);
        }
    });
    ctx.counters.add_edges(g.num_edges() as u64);
    if let Some(tripped) = guard.check(1) {
        return TriangleResult {
            total: total.load(Ordering::Relaxed),
            per_vertex: Vec::new(),
            outcome: tripped,
        };
    }
    TriangleResult {
        total: total.load(Ordering::Relaxed),
        per_vertex: per_vertex_counts(g),
        outcome: RunOutcome::Converged,
    }
}

fn per_vertex_counts(g: &Csr) -> Vec<u64> {
    (0..g.num_vertices() as u32)
        .into_par_iter()
        .map(|x| {
            let nx = g.neighbors(x);
            let mut c = 0u64;
            for (i, &y) in nx.iter().enumerate() {
                c += intersect_count(&nx[i + 1..], g.neighbors(y));
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn triangle_graph_has_one() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1), (1, 2), (2, 0)]));
        let ctx = Context::new(&g);
        let r = triangle_count(&ctx);
        assert_eq!(r.total, 1);
        assert_eq!(r.per_vertex, vec![1, 1, 1]);
    }

    #[test]
    fn square_has_none_k4_has_four() {
        let square =
            GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        let ctx = Context::new(&square);
        assert_eq!(triangle_count(&ctx).total, 0);
        let k4 = GraphBuilder::new()
            .build(Coo::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]));
        let ctx = Context::new(&k4);
        let r = triangle_count(&ctx);
        assert_eq!(r.total, 4);
        assert!(r.per_vertex.iter().all(|&c| c == 3));
    }

    #[test]
    fn matches_serial_oracle_on_random_graphs() {
        for seed in 0..3u64 {
            let g = GraphBuilder::new().build(erdos_renyi(120, 500, seed));
            let ctx = Context::new(&g);
            let r = triangle_count(&ctx);
            assert_eq!(r.total, serial::triangle_count(&g), "seed {seed}");
            // sum of per-vertex counts = 3 * total
            assert_eq!(r.per_vertex.iter().sum::<u64>(), 3 * r.total);
        }
    }

    #[test]
    fn cancelled_count_returns_zero_without_panicking() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = GraphBuilder::new().build(erdos_renyi(100, 400, 6));
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let r = triangle_count(&ctx);
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        assert_eq!(r.total, 0);
        assert!(r.per_vertex.is_empty());
    }

    #[test]
    fn iteration_cap_between_passes_keeps_the_exact_total() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 400, 6));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = triangle_count(&ctx);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.total, serial::triangle_count(&g));
        assert!(r.per_vertex.is_empty());
    }

    #[test]
    fn scale_free_graph_is_triangle_rich() {
        let g = GraphBuilder::new().build(rmat(8, 16, Default::default(), 4));
        let ctx = Context::new(&g);
        let r = triangle_count(&ctx);
        assert!(r.total > 100, "got {}", r.total);
        assert_eq!(r.total, serial::triangle_count(&g));
    }
}
