//! Bipartite node-ranking extensions (§5.5): the algorithms of Geil et
//! al.'s "WTF, GPU!" — HITS, SALSA, personalized PageRank, and the
//! composed Twitter who-to-follow ("Money") pipeline — demonstrating that
//! the advance operator "is flexible enough to encompass all three
//! node-ranking algorithms, including a 2-hop traversal in a bipartite
//! graph".
//!
//! Graphs here are directed left->right bipartite (`0..n_left` hubs,
//! `n_left..n` authorities); the context must carry the reverse graph.

use gunrock::prelude::*;
use gunrock_engine::atomics::AtomicF64;
use gunrock_graph::{EdgeId, VertexId};
use rayon::prelude::*;

/// Scores from a HITS or SALSA run.
#[derive(Clone, Debug)]
pub struct HubAuthScores {
    /// Hub score per vertex (meaningful on the left partition).
    pub hubs: Vec<f64>,
    /// Authority score per vertex (meaningful on the right partition).
    pub auths: Vec<f64>,
    /// Mutual-reinforcement iterations executed.
    pub iterations: u32,
    /// How the loop ended. Scores are valid at every iteration boundary
    /// (each round fully recomputes both sides), so a partial outcome
    /// just means fewer reinforcement rounds than requested.
    pub outcome: RunOutcome,
}

/// Accumulate-into functor: adds `weight(src) = source_score[src] /
/// norm(src)` into `sink[dst]` for every traversed edge.
struct Accumulate<'a> {
    source_score: &'a [f64],
    norm: &'a [f64],
    sink: &'a [AtomicF64],
}

impl AdvanceFunctor for Accumulate<'_> {
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        let n = self.norm[src as usize];
        if n > 0.0 {
            let _ = self.sink[dst as usize].fetch_add(self.source_score[src as usize] / n);
        }
        false
    }
}

fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.par_iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.par_iter_mut().for_each(|x| *x /= norm);
    }
}

fn ones_norm(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Hyperlink-Induced Topic Search: authority = sum of in-neighbor hub
/// scores, hub = sum of out-neighbor authority scores, L2-normalized
/// each iteration.
pub fn hits(ctx: &Context<'_>, n_left: usize, iters: u32) -> HubAuthScores {
    run_hub_auth(ctx, n_left, iters, false)
}

/// Stochastic Approach for Link-Structure Analysis: like HITS but each
/// contribution is degree-normalized (a random walk alternating
/// direction), so scores converge to stationary visit frequencies.
pub fn salsa(ctx: &Context<'_>, n_left: usize, iters: u32) -> HubAuthScores {
    run_hub_auth(ctx, n_left, iters, true)
}

fn run_hub_auth(
    ctx: &Context<'_>,
    n_left: usize,
    iters: u32,
    degree_norm: bool,
) -> HubAuthScores {
    let g = ctx.graph;
    let rev = ctx.reverse_graph();
    let n = g.num_vertices();
    assert!(n_left <= n);
    let left: Frontier = Frontier::from_vec((0..n_left as u32).collect());
    let right: Frontier = Frontier::from_vec((n_left as u32..n as u32).collect());
    let mut hubs = vec![0.0f64; n];
    let mut auths = vec![0.0f64; n];
    hubs[..n_left].iter_mut().for_each(|x| *x = 1.0);
    let out_norm: Vec<f64> = if degree_norm {
        (0..n as u32).map(|v| g.out_degree(v) as f64).collect()
    } else {
        ones_norm(n)
    };
    let in_norm: Vec<f64> = if degree_norm {
        (0..n as u32).map(|v| rev.out_degree(v) as f64).collect()
    } else {
        ones_norm(n)
    };
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    let mut completed = 0u32;
    for _ in 0..iters {
        if let Some(tripped) = guard.check(completed) {
            outcome = tripped;
            break;
        }
        completed += 1;
        // authority update: pull hub mass along forward edges
        let sink: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        let f = Accumulate { source_score: &hubs, norm: &out_norm, sink: &sink };
        let _ = advance::advance(ctx, &left, AdvanceSpec::for_effect(), &f);
        auths = sink.iter().map(|a| a.load()).collect();
        if !degree_norm {
            l2_normalize(&mut auths);
        }
        // hub update: push authority mass along reverse edges
        let sink: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        let f = Accumulate { source_score: &auths, norm: &in_norm, sink: &sink };
        // advance over the right partition on the reverse graph
        let rev_ctx = Context::new(rev);
        let _ = advance::advance(&rev_ctx, &right, AdvanceSpec::for_effect(), &f);
        ctx.counters.add_edges(rev_ctx.counters.edges());
        hubs = sink.iter().map(|a| a.load()).collect();
        if !degree_norm {
            l2_normalize(&mut hubs);
        }
        ctx.end_iteration(false);
    }
    HubAuthScores { hubs, auths, iterations: completed, outcome }
}

/// Personalized PageRank: residual push with all teleport mass on
/// `sources`. Returns scores concentrated around the sources.
pub fn personalized_pagerank(
    ctx: &Context<'_>,
    sources: &[VertexId],
    damping: f64,
    epsilon: f64,
    max_iters: usize,
) -> Vec<f64> {
    let g = ctx.graph;
    let n = g.num_vertices();
    let mut scores = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    let share = (1.0 - damping) / sources.len().max(1) as f64;
    for &s in sources {
        residual[s as usize] += share;
    }
    let mut frontier = Frontier::from_vec(sources.to_vec());
    let mut iterations = 0usize;
    // honor the context's run policy: a trip folds the pending residual
    // back into the scores below, keeping mass conserved
    let guard = ctx.guard();
    while !frontier.is_empty() && iterations < max_iters {
        if guard.check(iterations as u32).is_some() {
            break;
        }
        iterations += 1;
        // dangling mass restarts at the sources (PPR semantics)
        let mut dangling = 0.0f64;
        for &v in frontier.as_slice() {
            scores[v as usize] += residual[v as usize];
            if g.out_degree(v) == 0 {
                dangling += damping * residual[v as usize];
            }
        }
        let acc: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        struct Push<'a> {
            g: &'a gunrock_graph::Csr,
            residual: &'a [f64],
            acc: &'a [AtomicF64],
            damping: f64,
        }
        impl AdvanceFunctor for Push<'_> {
            #[inline]
            fn cond_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
                let deg = self.g.out_degree(src) as f64;
                let _ = self.acc[dst as usize]
                    .fetch_add(self.damping * self.residual[src as usize] / deg);
                false
            }
        }
        let f = Push { g, residual: &residual, acc: &acc, damping };
        let _ = advance::advance(ctx, &frontier, AdvanceSpec::for_effect(), &f);
        for &v in frontier.as_slice() {
            residual[v as usize] = 0.0;
        }
        residual.par_iter_mut().zip(acc.par_iter()).for_each(|(r, a)| *r += a.load());
        if dangling > 0.0 {
            let share = dangling / sources.len().max(1) as f64;
            for &s in sources {
                residual[s as usize] += share;
            }
        }
        frontier =
            Frontier::from_vec(gunrock_engine::compact::compact_indices(&residual, |&r| {
                r > epsilon
            }));
        ctx.end_iteration(false);
    }
    scores.par_iter_mut().zip(residual.par_iter()).for_each(|(s, r)| *s += r);
    scores
}

/// A who-to-follow recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The recommended account (right-partition vertex).
    pub vertex: VertexId,
    /// SALSA-style engagement score from the circle of trust.
    pub score: f64,
}

/// The Twitter "Money" who-to-follow pipeline (Geil et al.): compute the
/// user's circle of trust via personalized PageRank, then rank
/// authorities with SALSA restricted to the circle's engagements,
/// excluding accounts the user already follows. Returns the top-k
/// recommendations from the right partition.
pub fn who_to_follow(
    ctx: &Context<'_>,
    user: VertexId,
    n_left: usize,
    circle_size: usize,
    k: usize,
) -> Vec<Recommendation> {
    let g = ctx.graph;
    // 1. circle of trust: top PPR vertices on the left partition
    let ppr = personalized_pagerank(ctx, &[user], 0.85, 1e-10, 200);
    let mut left_scores: Vec<(VertexId, f64)> = (0..n_left as u32)
        .map(|v| (v, ppr[v as usize]))
        .filter(|&(v, s)| s > 0.0 && v != user)
        .collect();
    left_scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut circle: Vec<VertexId> =
        left_scores.into_iter().take(circle_size.saturating_sub(1)).map(|(v, _)| v).collect();
    circle.push(user);
    // 2. SALSA-style scoring: one hub->auth push from the circle
    // (degree-normalized), i.e. a 2-hop bipartite traversal seeded at
    // the circle
    let n = g.num_vertices();
    let sink: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    let norms: Vec<f64> = (0..n as u32).map(|v| g.out_degree(v) as f64).collect();
    let hubs: Vec<f64> = {
        let mut h = vec![0.0; n];
        for &c in &circle {
            h[c as usize] = 1.0 / circle.len() as f64;
        }
        h
    };
    let f = Accumulate { source_score: &hubs, norm: &norms, sink: &sink };
    let circle_frontier = Frontier::from_vec(circle.clone());
    let _ = advance::advance(ctx, &circle_frontier, AdvanceSpec::for_effect(), &f);
    // 3. exclude the user's existing follows and the user itself
    let followed: std::collections::HashSet<VertexId> =
        g.neighbors(user).iter().copied().collect();
    let mut recs: Vec<Recommendation> = (n_left as u32..n as u32)
        .map(|v| Recommendation { vertex: v, score: sink[v as usize].load() })
        .filter(|r| r.score > 0.0 && !followed.contains(&r.vertex))
        .collect();
    recs.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.vertex.cmp(&b.vertex)));
    recs.truncate(k);
    recs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::generators::bipartite_random;
    use gunrock_graph::{Coo, Csr, GraphBuilder};

    fn small_bipartite() -> (Csr, Csr, usize) {
        // left {0,1,2}, right {3,4}: 0->3, 1->3, 2->3, 2->4
        let coo = Coo::from_edges(5, &[(0, 3), (1, 3), (2, 3), (2, 4)]);
        let g = GraphBuilder::new().directed().build(coo);
        let rev = g.transpose();
        (g, rev, 3)
    }

    #[test]
    fn hits_identifies_the_popular_authority() {
        let (g, rev, n_left) = small_bipartite();
        let ctx = Context::new(&g).with_reverse(&rev);
        let s = hits(&ctx, n_left, 20);
        assert!(s.auths[3] > s.auths[4], "3 has more in-links");
        // vertex 2 links to both authorities: best hub
        assert!(s.hubs[2] > s.hubs[0]);
        assert!(s.hubs[2] > s.hubs[1]);
    }

    #[test]
    fn salsa_scores_are_degree_normalized_visits() {
        let (g, rev, n_left) = small_bipartite();
        let ctx = Context::new(&g).with_reverse(&rev);
        let s = salsa(&ctx, n_left, 30);
        assert!(s.auths[3] > s.auths[4]);
        assert!(s.auths.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn ppr_concentrates_mass_near_source() {
        let (g, rev, _) = small_bipartite();
        // make it walkable both ways for PPR
        let und =
            GraphBuilder::new().build(Coo::from_edges(5, &[(0, 3), (1, 3), (2, 3), (2, 4)]));
        let _ = (g, rev);
        let ctx = Context::new(&und);
        let p = personalized_pagerank(&ctx, &[0], 0.85, 1e-12, 500);
        assert!(p[0] > p[1], "source outranks distant vertices");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn policy_cap_stops_hits_early_with_valid_scores() {
        let (g, rev, n_left) = small_bipartite();
        let ctx = Context::new(&g)
            .with_reverse(&rev)
            .with_policy(RunPolicy::unbounded().max_iterations(2));
        let s = hits(&ctx, n_left, 20);
        assert_eq!(s.outcome, RunOutcome::IterationCapped);
        assert_eq!(s.iterations, 2);
        // two full rounds are enough for the qualitative ordering
        assert!(s.auths[3] > s.auths[4]);
    }

    #[test]
    fn wtf_recommends_unfollowed_popular_accounts() {
        let (coo, shape) = bipartite_random(200, 100, 6, 42);
        let g = GraphBuilder::new().directed().build(coo);
        let rev = g.transpose();
        // PPR needs to walk back from authorities: use the symmetrized
        // graph for the circle computation, directed for the push
        let und = GraphBuilder::new().build(g.to_coo());
        let ctx = Context::new(&und).with_reverse(&rev);
        let recs = who_to_follow(&ctx, 0, shape.n_left, 10, 5);
        assert!(!recs.is_empty());
        assert!(recs.len() <= 5);
        let followed: std::collections::HashSet<u32> =
            und.neighbors(0).iter().copied().collect();
        for r in &recs {
            assert!((r.vertex as usize) >= shape.n_left, "right partition only");
            assert!(!followed.contains(&r.vertex), "never recommend followed");
        }
        // scores descend
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
