//! Bit-parallel multi-source BFS (MS-BFS; PAPERS.md).
//!
//! Runs up to [`LANES`] independent BFS traversals in one enact loop:
//! each source owns a lane bit, the frontier/seen state is one `u64`
//! lane word per vertex, and every level is a single
//! [`advance_msbfs`] sweep — 64 traversals' worth of discovery per
//! word-sweep. Per-lane depths are extracted *at discovery time* by the
//! sweep's visitor (lane `l` of a new-lane word at vertex `v` means
//! lane `l`'s traversal reached `v` this level), so lane retirement
//! costs nothing extra: a lane whose bit drops out of the live-lane
//! union simply stops contributing words.
//!
//! The loop honors the same run-policy machinery as the single-source
//! primitives: guard checks at every iteration boundary, periodic and
//! exit checkpoints (`msbfs` snapshots carry the lane words and the
//! lane-major depth array), and structured failure on operator panic.

use crate::recover::{
    check_failed, expect_len, expect_vertex_ids, malformed, scalar, to_atomic_u32,
};
use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_engine::budget::estimate_bytes;
use gunrock_graph::{VertexId, INFINITY};
use std::sync::atomic::{AtomicU32, Ordering};

/// Multi-source BFS output: a lane-major depth matrix plus traversal
/// stats shared by the whole batch.
#[derive(Clone, Debug)]
pub struct MsbfsResult {
    /// Lane-major depths: `depths[l * num_vertices + v]` is lane `l`'s
    /// BFS depth of `v` from `sources[l]` (`INFINITY` = unreachable).
    pub depths: Vec<u32>,
    /// The batch's sources, one per lane, in lane order.
    pub sources: Vec<VertexId>,
    /// Vertex count of the graph the batch ran on (the lane stride).
    pub num_vertices: usize,
    /// Edges examined across the whole batch (each scanned edge counted
    /// once, however many lanes it served).
    pub edges_examined: u64,
    /// Bulk-synchronous iterations (levels) executed.
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the loop ended. Partial outcomes leave every completed
    /// level's depths consistent and deeper levels `INFINITY`.
    pub outcome: RunOutcome,
}

impl MsbfsResult {
    /// Number of lanes (sources) in the batch.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }

    /// Lane `l`'s depth array — directly comparable to a single-source
    /// `bfs` run's `labels` from `sources[l]`.
    pub fn lane_depths(&self, lane: usize) -> &[u32] {
        &self.depths[lane * self.num_vertices..(lane + 1) * self.num_vertices]
    }

    /// Aggregate source throughput: completed traversals per second of
    /// batch wall time — the figure the batching win is measured in.
    pub fn sources_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sources.len() as f64 / secs
        }
    }
}

/// In-flight batch state at an iteration boundary — exactly what a
/// checkpoint captures.
struct MsbfsLoop {
    depths: Vec<AtomicU32>,
    seen_words: Vec<u64>,
    frontier_words: Vec<u64>,
    level: u32,
    iters: u32,
    lanes_live: u64,
}

/// Runs one lane-packed batch of BFS traversals, one source per lane.
/// Accepts 1..=[`LANES`] sources (duplicates allowed: lanes are
/// independent); panics on an empty or oversized batch or an
/// out-of-range source.
pub fn msbfs(ctx: &Context<'_>, sources: &[VertexId]) -> MsbfsResult {
    let n = ctx.num_vertices();
    assert!(
        !sources.is_empty() && sources.len() <= LANES,
        "msbfs batch must hold 1..={LANES} sources, got {}",
        sources.len()
    );
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
    }
    let depths = atomic_u32_vec(n * sources.len(), INFINITY);
    let mut words = vec![0u64; n];
    for (l, &s) in sources.iter().enumerate() {
        words[s as usize] |= 1u64 << l;
        // ORDERING: Relaxed — seeding happens before the loop spawns any
        // parallel work; the first sweep's fork is the publication point.
        depths[l * n + s as usize].store(0, Ordering::Relaxed);
    }
    let st = MsbfsLoop {
        depths,
        seen_words: words.clone(),
        frontier_words: words,
        level: 0,
        iters: 0,
        lanes_live: lane_mask(sources.len()),
    };
    msbfs_run(ctx, sources, st)
}

/// [`msbfs`] with `Result` semantics: `Err` carries the structured
/// failure when an operator panicked or admission rejected the batch.
pub fn try_msbfs(ctx: &Context<'_>, sources: &[VertexId]) -> Result<MsbfsResult, GunrockError> {
    let r = msbfs(ctx, sources);
    check_failed(ctx, r.outcome, r)
}

/// Resumes a batch from a `gunrock-ckpt/v1` snapshot written by
/// [`msbfs`]'s checkpoint boundary.
pub fn msbfs_resume(ctx: &Context<'_>, ckpt: &Checkpoint) -> Result<MsbfsResult, GunrockError> {
    ckpt.expect_primitive("msbfs")?;
    let n = ctx.num_vertices();
    let sources = ckpt.u32s("sources")?;
    expect_vertex_ids(sources, n, "sources")?;
    if sources.is_empty() || sources.len() > LANES {
        return Err(malformed(format!("msbfs checkpoint holds {} lanes", sources.len())));
    }
    let depths = ckpt.u32s("depths")?;
    if depths.len() != n * sources.len() {
        return Err(malformed(format!(
            "depths section has {} entries, expected {} lanes x {} vertices",
            depths.len(),
            sources.len(),
            n
        )));
    }
    let seen = ckpt.u64s("seen")?;
    expect_len(seen.len(), n, "seen")?;
    let frontier = ckpt.u64s("frontier")?;
    expect_len(frontier.len(), n, "frontier")?;
    let scalars = ckpt.u32s("scalars")?;
    let level = scalar(scalars, 0, "level")?;
    let lane_count = scalar(scalars, 1, "lane_count")? as usize;
    if lane_count != sources.len() {
        return Err(malformed(format!(
            "scalar lane count {lane_count} disagrees with {} sources",
            sources.len()
        )));
    }
    let counters = ckpt.u64s("counters")?;
    let lanes_live = counters.first().copied().unwrap_or_else(|| lane_mask(sources.len()));
    let sources = sources.to_vec();
    let st = MsbfsLoop {
        depths: to_atomic_u32(depths),
        seen_words: seen.to_vec(),
        frontier_words: frontier.to_vec(),
        level,
        iters: ckpt.iteration(),
        lanes_live,
    };
    let r = msbfs_run(ctx, &sources, st);
    check_failed(ctx, r.outcome, r)
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. Sections: lane-major `depths`, per-lane `sources`, the
/// per-vertex `seen`/`frontier` lane words, packed scalars
/// `[level, lane_count]`, and the 64-bit live-lane union.
#[allow(clippy::too_many_arguments)]
fn msbfs_checkpoint(
    ctx: &Context<'_>,
    sources: &[VertexId],
    depths: &[AtomicU32],
    seen: &gunrock_engine::lanes::LaneMap,
    frontier: &gunrock_engine::lanes::LaneMap,
    iters: u32,
    level: u32,
    lanes_live: u64,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("msbfs", iters);
    ckpt.push_u32("depths", unwrap_atomic_u32(depths));
    ckpt.push_u32("sources", sources.to_vec());
    ckpt.push_u64("seen", seen.snapshot_words());
    ckpt.push_u64("frontier", frontier.snapshot_words());
    ckpt.push_u32("scalars", vec![level, sources.len() as u32]);
    ckpt.push_u64("counters", vec![lanes_live]);
    ctx.save_checkpoint(&ckpt);
}

/// The enact loop proper, starting from an arbitrary iteration-boundary
/// state (fresh from [`msbfs`] or restored by [`msbfs_resume`]).
fn msbfs_run(ctx: &Context<'_>, sources: &[VertexId], st: MsbfsLoop) -> MsbfsResult {
    let n = ctx.num_vertices();
    let start = std::time::Instant::now();
    // Budget admission: the lane maps and depth matrix are priced as a
    // unit before the first checkout, so an impossible batch fails with
    // a structured BudgetExceeded instead of a mid-run denial.
    if let Some(budget) = ctx.budget() {
        let need = estimate_bytes("msbfs", n as u64, ctx.num_edges() as u64);
        if need > budget.limit() {
            ctx.poison(GunrockError::BudgetExceeded {
                operator: "admission",
                iteration: 0,
                requested: need,
                reserved: budget.reserved(),
                limit: budget.limit(),
            });
        }
    }
    let MsbfsLoop {
        depths,
        seen_words,
        frontier_words,
        mut level,
        iters: mut enactor_iters,
        mut lanes_live,
    } = st;
    let fail = |iters: u32, depths: &[AtomicU32]| MsbfsResult {
        depths: unwrap_atomic_u32(depths),
        sources: sources.to_vec(),
        num_vertices: n,
        edges_examined: ctx.counters.edges(),
        iterations: iters,
        elapsed: start.elapsed(),
        outcome: RunOutcome::Failed,
    };
    if ctx.is_poisoned() {
        return fail(enactor_iters, &depths);
    }
    // The three lane maps are pool checkouts between operators: take
    // them isolated so a denied checkout fails the run structurally.
    let Some((mut seen, mut frontier, mut next)) = ctx.isolated_setup("setup", || {
        let mut seen = LaneMap::take(ctx.pool(), n);
        seen.restore_words(&seen_words);
        let mut frontier = LaneMap::take(ctx.pool(), n);
        frontier.restore_words(&frontier_words);
        let next = LaneMap::take(ctx.pool(), n);
        (seen, frontier, next)
    }) else {
        return fail(enactor_iters, &depths);
    };
    let mut active = frontier.count_active() as u64;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    macro_rules! boundary {
        () => {
            if ctx.checkpoint_due(enactor_iters) {
                msbfs_checkpoint(
                    ctx,
                    sources,
                    &depths,
                    &seen,
                    &frontier,
                    enactor_iters,
                    level,
                    lanes_live,
                );
            }
            if let Some(tripped) = guard.check(enactor_iters) {
                outcome = tripped;
                if tripped != RunOutcome::Failed {
                    msbfs_checkpoint(
                        ctx,
                        sources,
                        &depths,
                        &seen,
                        &frontier,
                        enactor_iters,
                        level,
                        lanes_live,
                    );
                }
                break;
            }
        };
    }

    while active > 0 {
        boundary!();
        level += 1;
        let depth_level = level;
        let sweep = advance::msbfs::advance_msbfs(
            ctx,
            &frontier,
            &mut seen,
            &mut next,
            active,
            lanes_live,
            |v, new_lanes| {
                let mut bits = new_lanes;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    // ORDERING: Relaxed — slot (l, v) is written by exactly one
                    // visitor call per run (each vertex discovers each lane
                    // once); the sweep's join barrier publishes the level.
                    depths[l * n + v as usize].store(depth_level, Ordering::Relaxed);
                }
            },
        );
        active = sweep.discovered;
        lanes_live = sweep.lanes;
        // ping-pong: the sweep left `next` holding exactly the new
        // frontier; the retired frontier becomes the next scratch map
        std::mem::swap(&mut frontier, &mut next);
        next.clear_all();
        enactor_iters += 1;
        ctx.end_iteration(false);
    }

    // A cooperative abort empties the sweep output, making loop exit
    // look like convergence; the guard has the final say (cf. bfs_run).
    if outcome == RunOutcome::Converged && ctx.abort_requested() {
        if let Some(tripped) = guard.check(enactor_iters) {
            outcome = tripped;
            if tripped != RunOutcome::Failed {
                msbfs_checkpoint(
                    ctx,
                    sources,
                    &depths,
                    &seen,
                    &frontier,
                    enactor_iters,
                    level,
                    lanes_live,
                );
            }
        }
    }
    for lm in [seen, frontier, next] {
        lm.release(ctx.pool());
    }
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    MsbfsResult {
        depths: unwrap_atomic_u32(&depths),
        sources: sources.to_vec(),
        num_vertices: n,
        edges_examined: ctx.counters.edges(),
        iterations: enactor_iters,
        elapsed: start.elapsed(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs, BfsOptions};
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::GraphBuilder;

    #[test]
    fn batch_matches_independent_runs() {
        let g = GraphBuilder::new().build(rmat(9, 8, Default::default(), 2));
        let sources: Vec<u32> = (0..64).map(|i| (i * 7) % g.num_vertices() as u32).collect();
        let ctx = Context::new(&g);
        let r = msbfs(&ctx, &sources);
        assert_eq!(r.outcome, RunOutcome::Converged);
        for (l, &s) in sources.iter().enumerate() {
            assert_eq!(r.lane_depths(l), serial::bfs(&g, s).as_slice(), "lane {l} source {s}");
        }
    }

    #[test]
    fn partial_batches_fill_only_their_lanes() {
        let g = GraphBuilder::new().build(erdos_renyi(200, 800, 5));
        for lanes in [1usize, 7, 63] {
            let sources: Vec<u32> = (0..lanes as u32).collect();
            let ctx = Context::new(&g);
            let r = msbfs(&ctx, &sources);
            assert_eq!(r.lanes(), lanes);
            for (l, &s) in sources.iter().enumerate() {
                assert_eq!(r.lane_depths(l), serial::bfs(&g, s).as_slice(), "{lanes} lanes");
            }
        }
    }

    #[test]
    fn batch_examines_a_fraction_of_sequential_edges() {
        let g = GraphBuilder::new().build(rmat(10, 16, Default::default(), 3));
        let sources: Vec<u32> = (0..64u32).collect();
        let ctx = Context::new(&g);
        let batch = msbfs(&ctx, &sources);
        let mut sequential = 0u64;
        for &s in &sources {
            let c = Context::new(&g);
            sequential += bfs(&c, s, BfsOptions::atomic()).edges_examined;
        }
        assert!(
            batch.edges_examined * 4 < sequential,
            "lane packing must amortize edge scans: batch {} vs sequential {}",
            batch.edges_examined,
            sequential
        );
    }

    #[test]
    fn checkpoint_resume_round_trip() {
        let g = GraphBuilder::new().build(rmat(9, 8, Default::default(), 4));
        let sources: Vec<u32> = (0..16u32).collect();
        let full = {
            let ctx = Context::new(&g);
            msbfs(&ctx, &sources)
        };
        let dir = tempdir();
        let capped = {
            let ctx = Context::new(&g)
                .with_policy(RunPolicy::unbounded().max_iterations(2))
                .with_checkpoints(CheckpointPolicy::new(1, &dir));
            msbfs(&ctx, &sources)
        };
        assert_eq!(capped.outcome, RunOutcome::IterationCapped);
        let ckpt = Checkpoint::load(&dir.join("msbfs.ckpt")).unwrap();
        let resumed = {
            let ctx = Context::new(&g);
            msbfs_resume(&ctx, &ckpt).unwrap()
        };
        assert_eq!(resumed.outcome, RunOutcome::Converged);
        assert_eq!(resumed.depths, full.depths);
        assert_eq!(resumed.sources, full.sources);
        std::fs::remove_dir_all(dir).ok();
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "msbfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn iteration_cap_leaves_partial_depths() {
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(20, &edges));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = msbfs(&ctx, &[0, 5]);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.lane_depths(0)[1], 1);
        assert_eq!(r.lane_depths(0)[2], INFINITY, "level 2 never ran");
        assert_eq!(r.lane_depths(1)[6], 1);
    }

    #[test]
    fn sources_per_second_scales_with_lanes() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 400, 8));
        let ctx = Context::new(&g);
        let r = msbfs(&ctx, &[0, 1, 2, 3]);
        assert_eq!(r.lanes(), 4);
        assert!(r.sources_per_second() > 0.0);
    }
}
