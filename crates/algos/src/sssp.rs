//! Single-source shortest path (§4.2, §5.2, Algorithm 1).
//!
//! One iteration maps onto three Gunrock steps exactly as in the paper:
//! *advance* relaxes the frontier's out-edges (`UpdateLabel`: the
//! `new_label < atomicMin(labels[dst], new_label)` idiom, with `SetPred`
//! fused as the apply), *filter* removes redundant vertex ids (the
//! `output_queue_id` claim of `RemoveRedundant`), and the two-level
//! *priority queue* splits the output into near/far piles (delta
//! stepping, generalizing Davidson et al.).

use crate::recover::{
    check_failed, expect_len, expect_vertex_ids, malformed, scalar, to_atomic_u32,
};
use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_graph::{Csr, EdgeId, VertexId, INFINITY, INVALID_VERTEX};
use std::sync::atomic::{AtomicU32, Ordering};

/// SSSP configuration.
#[derive(Clone, Copy, Debug)]
pub struct SsspOptions {
    /// Near/far bucket width. `None` = Meyer–Sanders style heuristic
    /// (max weight / average degree).
    pub delta: Option<u32>,
    /// Disable the priority queue entirely (plain frontier
    /// label-correcting, i.e. parallel Bellman-Ford) — the paper's
    /// pre-Davidson baseline, kept for the ablation.
    pub use_priority_queue: bool,
    /// Workload mapping for the advance.
    pub mode: AdvanceMode,
    /// Record shortest-path-tree predecessors.
    pub record_predecessors: bool,
}

impl Default for SsspOptions {
    fn default() -> Self {
        SsspOptions {
            delta: None,
            use_priority_queue: true,
            mode: AdvanceMode::Auto,
            record_predecessors: true,
        }
    }
}

/// SSSP output.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Shortest distance per vertex (`INFINITY` = unreachable).
    pub dist: Vec<u32>,
    /// Shortest-path-tree parent (`INVALID_VERTEX` for source/unreached).
    pub preds: Vec<VertexId>,
    /// Edge relaxations attempted.
    pub edges_examined: u64,
    /// Bulk-synchronous iterations executed.
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the enact loop ended. Anything but
    /// [`RunOutcome::Converged`] means `dist`/`preds` are a consistent
    /// partial relaxation: every finite distance is a real path length,
    /// but not necessarily the shortest.
    pub outcome: RunOutcome,
}

impl SsspResult {
    /// Millions of traversed edges per second.
    pub fn mteps(&self) -> f64 {
        Timing { elapsed: self.elapsed, edges_examined: self.edges_examined }.mteps()
    }
}

/// The paper's `UpdateLabel` + `SetPred` functors fused into one advance
/// functor over the weighted graph.
struct Relax<'a> {
    graph: &'a Csr,
    dist: &'a [AtomicU32],
    preds: Option<&'a [AtomicU32]>,
}

impl AdvanceFunctor for Relax<'_> {
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, e: EdgeId) -> bool {
        let new_label = self.dist[src as usize]
            // ORDERING: Relaxed — dist cells are monotonic fetch_min targets and tag
            // swaps need only per-cell atomicity; relaxation rounds end at join barriers.
            .load(Ordering::Relaxed)
            .saturating_add(self.graph.weight(e));
        // new_label < atomicMin(labels[dst], new_label)
        self.dist[dst as usize].fetch_min(new_label, Ordering::Relaxed) > new_label
    }
    #[inline]
    fn apply_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) {
        if let Some(p) = self.preds {
            // ORDERING: Relaxed — dist cells are monotonic fetch_min targets and tag
            // swaps need only per-cell atomicity; relaxation rounds end at join barriers.
            p[dst as usize].store(src, Ordering::Relaxed);
        }
    }
}

/// The paper's `RemoveRedundant`: each improved vertex survives the
/// filter exactly once per iteration, claimed via its output-queue tag.
struct RemoveRedundant<'a> {
    tags: &'a [AtomicU32],
    queue_id: u32,
}

impl FilterFunctor for RemoveRedundant<'_> {
    #[inline]
    fn cond(&self, v: u32) -> bool {
        // ORDERING: Relaxed — dist cells are monotonic fetch_min targets and tag
        // swaps need only per-cell atomicity; relaxation rounds end at join barriers.
        self.tags[v as usize].swap(self.queue_id, Ordering::Relaxed) != self.queue_id
    }
}

/// Picks a delta-stepping bucket width: roughly max-weight / avg-degree,
/// so each near pile carries a bounded amount of re-relaxation work.
pub fn default_delta(g: &Csr) -> u32 {
    let max_w = g.edge_values().map(|w| w.iter().copied().max().unwrap_or(1)).unwrap_or(1);
    let avg_deg = (g.num_edges() as f64 / g.num_vertices().max(1) as f64).max(1.0);
    ((max_w as f64 / avg_deg).ceil() as u32).max(1)
}

/// In-flight SSSP loop state at an iteration boundary (what a
/// checkpoint captures; see [`sssp_resume`]).
struct SsspLoop {
    dist: Vec<AtomicU32>,
    preds: Option<Vec<AtomicU32>>,
    tags: Vec<AtomicU32>,
    frontier: Frontier,
    queue: NearFarQueue,
    iterations: u32,
    queue_id: u32,
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. Sections: per-vertex `dist`/`preds`/`tags`, the live
/// `frontier` and parked `far` pile, plus packed scalars
/// `[src, queue_id, delta, pivot, use_priority_queue, record_preds]`.
#[allow(clippy::too_many_arguments)]
fn sssp_checkpoint(
    ctx: &Context<'_>,
    src: VertexId,
    opts: &SsspOptions,
    dist: &[AtomicU32],
    preds: Option<&[AtomicU32]>,
    tags: &[AtomicU32],
    frontier: &Frontier,
    queue: &NearFarQueue,
    iterations: u32,
    queue_id: u32,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("sssp", iterations);
    ckpt.push_u32("dist", unwrap_atomic_u32(dist));
    ckpt.push_u32("preds", preds.map(unwrap_atomic_u32).unwrap_or_default());
    ckpt.push_u32("tags", unwrap_atomic_u32(tags));
    ckpt.push_u32("frontier", frontier.as_slice().to_vec());
    ckpt.push_u32("far", queue.far_slice().to_vec());
    ckpt.push_u32(
        "scalars",
        vec![
            src,
            queue_id,
            queue.delta(),
            queue.pivot(),
            opts.use_priority_queue as u32,
            opts.record_predecessors as u32,
        ],
    );
    ctx.save_checkpoint(&ckpt);
}

/// Runs SSSP from `src` (Dijkstra-class: needs non-negative weights;
/// unweighted graphs degenerate to BFS distances).
pub fn sssp(ctx: &Context<'_>, src: VertexId, opts: SsspOptions) -> SsspResult {
    let n = ctx.num_vertices();
    assert!((src as usize) < n, "source out of range");
    let dist = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — dist cells are monotonic fetch_min targets and tag
    // swaps need only per-cell atomicity; relaxation rounds end at join barriers.
    dist[src as usize].store(0, Ordering::Relaxed);
    let delta = opts.delta.unwrap_or_else(|| default_delta(ctx.graph));
    let st = SsspLoop {
        dist,
        preds: opts.record_predecessors.then(|| atomic_u32_vec(n, INVALID_VERTEX)),
        tags: atomic_u32_vec(n, u32::MAX),
        frontier: Frontier::single(src),
        queue: NearFarQueue::new(delta),
        iterations: 0,
        queue_id: 0,
    };
    sssp_run(ctx, src, opts, st)
}

/// Resumes SSSP from a `gunrock-ckpt/v1` snapshot. The checkpoint's
/// source, bucket geometry, queue discipline, and recorded-predecessor
/// setting override `opts`; the advance mode still comes from `opts`.
pub fn sssp_resume(
    ctx: &Context<'_>,
    opts: SsspOptions,
    ckpt: &Checkpoint,
) -> Result<SsspResult, GunrockError> {
    ckpt.expect_primitive("sssp")?;
    let n = ctx.num_vertices();
    let dist = ckpt.u32s("dist")?;
    expect_len(dist.len(), n, "dist")?;
    let preds = ckpt.u32s("preds")?;
    let tags = ckpt.u32s("tags")?;
    expect_len(tags.len(), n, "tags")?;
    let frontier = ckpt.u32s("frontier")?;
    expect_vertex_ids(frontier, n, "frontier")?;
    let far = ckpt.u32s("far")?;
    expect_vertex_ids(far, n, "far")?;
    let scalars = ckpt.u32s("scalars")?;
    let src = scalar(scalars, 0, "src")?;
    if src as usize >= n {
        return Err(malformed(format!("source {src} out of range for {n} vertices")));
    }
    let queue_id = scalar(scalars, 1, "queue_id")?;
    let delta = scalar(scalars, 2, "delta")?;
    if delta == 0 {
        return Err(malformed("bucket width delta must be positive"));
    }
    let pivot = scalar(scalars, 3, "pivot")?;
    let use_priority_queue = scalar(scalars, 4, "use_priority_queue")? == 1;
    let record_predecessors = scalar(scalars, 5, "record_predecessors")? == 1;
    if record_predecessors {
        expect_len(preds.len(), n, "preds")?;
    }
    let opts =
        SsspOptions { delta: Some(delta), use_priority_queue, record_predecessors, ..opts };
    let st = SsspLoop {
        dist: to_atomic_u32(dist),
        preds: record_predecessors.then(|| to_atomic_u32(preds)),
        tags: to_atomic_u32(tags),
        frontier: Frontier::from_vec(frontier.to_vec()),
        queue: NearFarQueue::restore(delta, pivot, far.to_vec()),
        iterations: ckpt.iteration(),
        queue_id,
    };
    let r = sssp_run(ctx, src, opts, st);
    check_failed(ctx, r.outcome, r)
}

/// The enact loop proper, starting from an arbitrary iteration-boundary
/// state (fresh from [`sssp`] or restored by [`sssp_resume`]).
fn sssp_run(ctx: &Context<'_>, src: VertexId, opts: SsspOptions, st: SsspLoop) -> SsspResult {
    let start = std::time::Instant::now();
    // Budget admission: demote the advance mode (or poison with a
    // structured BudgetExceeded) before the first operator launches.
    let opts = SsspOptions { mode: crate::admission::admit(ctx, "sssp", opts.mode), ..opts };
    let SsspLoop { dist, preds, tags, mut frontier, mut queue, mut iterations, mut queue_id } =
        st;

    let relax = Relax { graph: ctx.graph, dist: &dist, preds: preds.as_deref() };
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    // Periodic snapshot at the iteration boundary, plus an exit snapshot
    // on a guard trip — except from a poisoned (Failed) run, whose state
    // may be inconsistent mid-operator. Yields the tripped outcome so
    // the call site can break out of the labeled enact loop.
    macro_rules! boundary {
        () => {{
            if ctx.checkpoint_due(iterations) {
                sssp_checkpoint(
                    ctx,
                    src,
                    &opts,
                    &dist,
                    preds.as_deref(),
                    &tags,
                    &frontier,
                    &queue,
                    iterations,
                    queue_id,
                );
            }
            let tripped = guard.check(iterations);
            if let Some(t) = tripped {
                if t != RunOutcome::Failed {
                    sssp_checkpoint(
                        ctx,
                        src,
                        &opts,
                        &dist,
                        preds.as_deref(),
                        &tags,
                        &frontier,
                        &queue,
                        iterations,
                        queue_id,
                    );
                }
            }
            tripped
        }};
    }

    'enact: loop {
        while !frontier.is_empty() {
            if let Some(tripped) = boundary!() {
                outcome = tripped;
                break 'enact;
            }
            iterations += 1;
            ctx.end_iteration(false);
            let spec = AdvanceSpec::v2v().with_mode(opts.mode);
            let raw = advance::advance(ctx, &frontier, spec, &relax);
            let dedup = filter::filter(ctx, &raw, &RemoveRedundant { tags: &tags, queue_id });
            // the raw advance output is dead once deduplicated: back to
            // the pool so the next relaxation reuses its storage
            ctx.recycle(raw);
            queue_id = queue_id.wrapping_add(1);
            let next = if opts.use_priority_queue {
                // ORDERING: Relaxed — dist cells are monotonic fetch_min targets and tag
                // swaps need only per-cell atomicity; relaxation rounds end at join barriers.
                queue.split(dedup, |v| dist[v as usize].load(Ordering::Relaxed))
            } else {
                dedup
            };
            ctx.recycle(std::mem::replace(&mut frontier, next));
        }
        if !opts.use_priority_queue {
            break;
        }
        frontier = queue.refill(|v| dist[v as usize].load(Ordering::Relaxed));
        if frontier.is_empty() {
            break;
        }
    }

    // the loop's last frontier still owns pooled storage; return it so
    // a re-run on this context starts with a warm pool
    ctx.recycle(frontier);
    // a panic that emptied the frontier must not read as convergence
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    SsspResult {
        dist: unwrap_atomic_u32(&dist),
        preds: preds.map(|p| unwrap_atomic_u32(&p)).unwrap_or_default(),
        edges_examined: ctx.counters.edges(),
        iterations,
        elapsed: start.elapsed(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, hub_chain, rmat};
    use gunrock_graph::GraphBuilder;

    fn suite() -> Vec<Csr> {
        vec![
            GraphBuilder::new().random_weights(1, 64, 1).build(erdos_renyi(400, 1200, 1)),
            GraphBuilder::new().random_weights(1, 64, 2).build(rmat(
                9,
                8,
                Default::default(),
                2,
            )),
            GraphBuilder::new().random_weights(1, 64, 3).build(grid2d(18, 18, 0.1, 0.0, 3)),
            GraphBuilder::new().random_weights(1, 64, 4).build(hub_chain(500, 0.1, 100, 4)),
        ]
    }

    #[test]
    fn matches_dijkstra_on_all_topologies() {
        for (i, g) in suite().iter().enumerate() {
            let want = serial::dijkstra(g, 0);
            let ctx = Context::new(g);
            let r = sssp(&ctx, 0, SsspOptions::default());
            assert_eq!(r.dist, want, "graph {i}");
        }
    }

    #[test]
    fn bellman_ford_mode_matches_too() {
        for g in suite() {
            let want = serial::dijkstra(&g, 0);
            let ctx = Context::new(&g);
            let r =
                sssp(&ctx, 0, SsspOptions { use_priority_queue: false, ..Default::default() });
            assert_eq!(r.dist, want);
        }
    }

    #[test]
    fn all_deltas_give_correct_distances() {
        let g = &suite()[0];
        let want = serial::dijkstra(g, 0);
        for delta in [1u32, 4, 16, 64, 100_000] {
            let ctx = Context::new(g);
            let r = sssp(&ctx, 0, SsspOptions { delta: Some(delta), ..Default::default() });
            assert_eq!(r.dist, want, "delta {delta}");
        }
    }

    #[test]
    fn priority_queue_reduces_relaxations_vs_bellman_ford() {
        // on a long-diameter weighted graph, delta stepping should do
        // fewer edge relaxations than frontier Bellman-Ford
        let g =
            GraphBuilder::new().random_weights(1, 64, 7).build(grid2d(40, 40, 0.05, 0.0, 7));
        let bf = {
            let ctx = Context::new(&g);
            sssp(&ctx, 0, SsspOptions { use_priority_queue: false, ..Default::default() })
        };
        let ds = {
            let ctx = Context::new(&g);
            sssp(&ctx, 0, SsspOptions::default())
        };
        assert_eq!(bf.dist, ds.dist);
        assert!(
            ds.edges_examined < bf.edges_examined,
            "delta stepping {} vs bellman-ford {}",
            ds.edges_examined,
            bf.edges_examined
        );
    }

    #[test]
    fn predecessors_form_shortest_path_tree() {
        let g = &suite()[1];
        let ctx = Context::new(g);
        let r = sssp(&ctx, 0, SsspOptions::default());
        for v in 0..g.num_vertices() {
            if r.dist[v] == INFINITY || v == 0 {
                continue;
            }
            let p = r.preds[v];
            assert_ne!(p, INVALID_VERTEX, "vertex {v}");
            // the recorded parent achieves the shortest distance
            let e = g
                .edge_range(p)
                .find(|&e| g.col_indices()[e] == v as u32)
                .expect("pred edge exists");
            assert_eq!(r.dist[p as usize] + g.weight(e as u32), r.dist[v], "vertex {v}");
        }
    }

    #[test]
    fn unweighted_graph_degenerates_to_bfs() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 900, 9));
        let ctx = Context::new(&g);
        let r = sssp(&ctx, 0, SsspOptions::default());
        assert_eq!(r.dist, serial::bfs(&g, 0));
    }

    #[test]
    fn iteration_cap_returns_consistent_partial_distances() {
        let g =
            GraphBuilder::new().random_weights(1, 64, 11).build(grid2d(30, 30, 0.0, 0.0, 11));
        let full = {
            let ctx = Context::new(&g);
            sssp(&ctx, 0, SsspOptions::default())
        };
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(2));
        let r = sssp(&ctx, 0, SsspOptions::default());
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 2);
        assert_eq!(full.outcome, RunOutcome::Converged);
        // every settled distance is an upper bound on the true distance
        // (a real path length), never an undershoot
        for v in 0..g.num_vertices() {
            assert!(r.dist[v] >= full.dist[v], "vertex {v}");
        }
        assert_eq!(r.dist[0], 0);
    }

    #[test]
    fn pre_tripped_cancel_leaves_only_the_source_settled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = &suite()[0];
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let r = sssp(&ctx, 0, SsspOptions::default());
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.dist[0], 0);
        assert!(r.dist[1..].iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn default_delta_is_sane() {
        for g in suite() {
            let d = default_delta(&g);
            assert!((1..=64).contains(&d), "delta {d}");
        }
    }
}
