//! Multi-source personalized PageRank via batched sparse push.
//!
//! The Andersen–Chung–Lang push scheme, lane-packed like [`msbfs`]: up
//! to [`LANES`] personalization sources run in one loop, a [`LaneMap`]
//! marks which lanes have pushable residual at each vertex, and one
//! word-sweep per level processes every (vertex, lane) pair whose
//! residual crossed the threshold — the same whole-word skip and
//! fetch_or marking discipline as the batched BFS advance, with
//! per-lane `f64` score/residual arrays riding alongside.
//!
//! Per (vertex `v`, lane `l`) with residual `r >= epsilon * deg(v)`:
//! `score += alpha * r`, and `(1 - alpha) * r / deg(v)` is pushed to
//! each out-neighbor's residual, marking the neighbor's lane bit in the
//! next frontier. Sub-threshold residual is retained in place (the ACL
//! guarantee: on convergence every residual is below
//! `epsilon * deg`). Zero-degree vertices absorb their whole residual
//! into their score.
//!
//! The loop honors the run-policy machinery: guard checks every
//! iteration boundary, periodic/exit checkpoints (`msppr` snapshots),
//! and structured failure on panic (each level runs isolated).
//!
//! [`msbfs`]: crate::msbfs::msbfs

use crate::recover::{check_failed, expect_len, expect_vertex_ids, malformed, scalar};
use gunrock::prelude::*;
use gunrock_graph::VertexId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Batched PPR configuration.
#[derive(Clone, Copy, Debug)]
pub struct MspprOptions {
    /// Teleport probability (the fraction of pushed residual retained
    /// as score each push).
    pub alpha: f64,
    /// Push threshold: lane `l` pushes at `v` while its residual is at
    /// least `epsilon * deg(v)`.
    pub epsilon: f64,
}

impl Default for MspprOptions {
    fn default() -> Self {
        MspprOptions { alpha: 0.15, epsilon: 1e-6 }
    }
}

/// Batched PPR output: a lane-major score matrix plus shared run stats.
#[derive(Clone, Debug)]
pub struct MspprResult {
    /// Lane-major scores: `scores[l * num_vertices + v]` is lane `l`'s
    /// PPR mass at `v`, personalized on `sources[l]`.
    pub scores: Vec<f64>,
    /// The batch's personalization sources, one per lane.
    pub sources: Vec<VertexId>,
    /// Vertex count of the graph the batch ran on (the lane stride).
    pub num_vertices: usize,
    /// Edges examined across the whole batch.
    pub edges_examined: u64,
    /// Bulk-synchronous push rounds executed.
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the loop ended.
    pub outcome: RunOutcome,
}

impl MspprResult {
    /// Lane `l`'s score array.
    pub fn lane_scores(&self, lane: usize) -> &[f64] {
        &self.scores[lane * self.num_vertices..(lane + 1) * self.num_vertices]
    }
}

/// Lock-free `f64` add on bit-stored cells (CAS loop), shared by score
/// and residual updates.
#[inline]
fn add_f64(cell: &AtomicU64, delta: f64) {
    // ORDERING: Relaxed — residual/score accumulation is commutative and
    // only needs atomicity; the level's join barrier publishes the sums.
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// In-flight batch state at an iteration boundary.
struct MspprLoop {
    scores: Vec<AtomicU64>,
    residual: Vec<AtomicU64>,
    active_words: Vec<u64>,
    iters: u32,
}

fn f64_cells(values: &[f64]) -> Vec<AtomicU64> {
    values.iter().map(|v| AtomicU64::new(v.to_bits())).collect()
}

fn f64_values(cells: &[AtomicU64]) -> Vec<f64> {
    // ORDERING: Relaxed — boundary read; the last level's join barrier
    // published every cell.
    cells.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect()
}

/// Runs one lane-packed batch of personalized PageRank pushes, one
/// personalization source per lane. Accepts 1..=[`LANES`] sources;
/// panics on an empty or oversized batch or an out-of-range source.
pub fn msppr(ctx: &Context<'_>, sources: &[VertexId], opts: MspprOptions) -> MspprResult {
    let n = ctx.num_vertices();
    assert!(
        !sources.is_empty() && sources.len() <= LANES,
        "msppr batch must hold 1..={LANES} sources, got {}",
        sources.len()
    );
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
    }
    let scores = f64_cells(&vec![0.0; n * sources.len()]);
    let residual = f64_cells(&vec![0.0; n * sources.len()]);
    let mut active_words = vec![0u64; n];
    for (l, &s) in sources.iter().enumerate() {
        // ORDERING: Relaxed — seeding precedes the loop's first fork.
        residual[l * n + s as usize].store(1f64.to_bits(), Ordering::Relaxed);
        active_words[s as usize] |= 1u64 << l;
    }
    let st = MspprLoop { scores, residual, active_words, iters: 0 };
    msppr_run(ctx, sources, opts, st)
}

/// [`msppr`] with `Result` semantics.
pub fn try_msppr(
    ctx: &Context<'_>,
    sources: &[VertexId],
    opts: MspprOptions,
) -> Result<MspprResult, GunrockError> {
    let r = msppr(ctx, sources, opts);
    check_failed(ctx, r.outcome, r)
}

/// Resumes a batch from a `gunrock-ckpt/v1` snapshot written by
/// [`msppr`]'s checkpoint boundary. `opts` configures the continued
/// portion (threshold/teleport come from the checkpoint).
pub fn msppr_resume(ctx: &Context<'_>, ckpt: &Checkpoint) -> Result<MspprResult, GunrockError> {
    ckpt.expect_primitive("msppr")?;
    let n = ctx.num_vertices();
    let sources = ckpt.u32s("sources")?;
    expect_vertex_ids(sources, n, "sources")?;
    if sources.is_empty() || sources.len() > LANES {
        return Err(malformed(format!("msppr checkpoint holds {} lanes", sources.len())));
    }
    let scores = ckpt.f64s("scores")?;
    let residual = ckpt.f64s("residual")?;
    if scores.len() != n * sources.len() || residual.len() != scores.len() {
        return Err(malformed("score/residual sections disagree with lanes x vertices"));
    }
    let active = ckpt.u64s("active")?;
    expect_len(active.len(), n, "active")?;
    let scalars = ckpt.u32s("scalars")?;
    let lane_count = scalar(scalars, 0, "lane_count")? as usize;
    if lane_count != sources.len() {
        return Err(malformed("scalar lane count disagrees with sources"));
    }
    let params = ckpt.f64s("params")?;
    let opts = MspprOptions {
        alpha: params.first().copied().unwrap_or(0.15),
        epsilon: params.get(1).copied().unwrap_or(1e-6),
    };
    let sources = sources.to_vec();
    let st = MspprLoop {
        scores: f64_cells(scores),
        residual: f64_cells(residual),
        active_words: active.to_vec(),
        iters: ckpt.iteration(),
    };
    let r = msppr_run(ctx, &sources, opts, st);
    check_failed(ctx, r.outcome, r)
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed.
fn msppr_checkpoint(
    ctx: &Context<'_>,
    sources: &[VertexId],
    opts: MspprOptions,
    scores: &[AtomicU64],
    residual: &[AtomicU64],
    active: &LaneMap,
    iters: u32,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("msppr", iters);
    ckpt.push_f64("scores", f64_values(scores));
    ckpt.push_f64("residual", f64_values(residual));
    ckpt.push_u64("active", active.snapshot_words());
    ckpt.push_u32("sources", sources.to_vec());
    ckpt.push_u32("scalars", vec![sources.len() as u32]);
    ckpt.push_f64("params", vec![opts.alpha, opts.epsilon]);
    ctx.save_checkpoint(&ckpt);
}

/// The enact loop proper.
fn msppr_run(
    ctx: &Context<'_>,
    sources: &[VertexId],
    opts: MspprOptions,
    st: MspprLoop,
) -> MspprResult {
    let n = ctx.num_vertices();
    let start = std::time::Instant::now();
    let MspprLoop { scores, residual, active_words, iters: mut enactor_iters } = st;
    let fail = |iters: u32, scores: &[AtomicU64]| MspprResult {
        scores: f64_values(scores),
        sources: sources.to_vec(),
        num_vertices: n,
        edges_examined: ctx.counters.edges(),
        iterations: iters,
        elapsed: start.elapsed(),
        outcome: RunOutcome::Failed,
    };
    if ctx.is_poisoned() {
        return fail(enactor_iters, &scores);
    }
    let Some((mut active, mut next)) = ctx.isolated_setup("setup", || {
        let mut active = LaneMap::take(ctx.pool(), n);
        active.restore_words(&active_words);
        let next = LaneMap::take(ctx.pool(), n);
        (active, next)
    }) else {
        return fail(enactor_iters, &scores);
    };
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    let g = ctx.graph;
    let cols = g.col_indices();

    macro_rules! boundary {
        () => {
            if ctx.checkpoint_due(enactor_iters) {
                msppr_checkpoint(
                    ctx,
                    sources,
                    opts,
                    &scores,
                    &residual,
                    &active,
                    enactor_iters,
                );
            }
            if let Some(tripped) = guard.check(enactor_iters) {
                outcome = tripped;
                if tripped != RunOutcome::Failed {
                    msppr_checkpoint(
                        ctx,
                        sources,
                        opts,
                        &scores,
                        &residual,
                        &active,
                        enactor_iters,
                    );
                }
                break;
            }
        };
    }

    while active.count_active() > 0 {
        boundary!();
        // One push round, panic-isolated like an operator launch: the
        // sweep mirrors the batched advance's scatter (whole-word skip
        // of inactive vertices, per-lane bit iteration, fetch_or lane
        // marking on pushed neighbors).
        let round = ctx.isolated_setup("advance", || {
            if let Some(inj) = ctx.injector() {
                inj.maybe_panic("advance:msppr");
            }
            let next_ref: &LaneMap = &next;
            let vgrain = (n / (rayon::current_num_threads() * 8).max(1)).max(64);
            active
                .words()
                .par_chunks(vgrain)
                .enumerate()
                .map(|(ci, words)| {
                    let mut edges = 0u64;
                    if ctx.abort_mid_operator() {
                        return edges;
                    }
                    for (i, w) in words.iter().enumerate() {
                        // ORDERING: Relaxed — the active map is read-only
                        // during the sweep; the previous round's join
                        // barrier published it.
                        let aw = w.load(Ordering::Relaxed);
                        if aw == 0 {
                            continue;
                        }
                        let v = ci * vgrain + i;
                        let deg = g.out_degree(v as u32);
                        let mut bits = aw;
                        while bits != 0 {
                            let l = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let idx = l * n + v;
                            // ORDERING: Relaxed — the swap claims this cell's
                            // mass atomically; concurrent pushes either land
                            // before (claimed now) or after (next round).
                            let r = f64::from_bits(residual[idx].swap(0, Ordering::Relaxed));
                            if r == 0.0 {
                                continue;
                            }
                            if deg == 0 {
                                // dangling vertex: absorb the whole mass
                                add_f64(&scores[idx], r);
                                continue;
                            }
                            if r < opts.epsilon * deg as f64 {
                                // below threshold: retain in place, stay quiet
                                add_f64(&residual[idx], r);
                                continue;
                            }
                            add_f64(&scores[idx], opts.alpha * r);
                            let share = (1.0 - opts.alpha) * r / deg as f64;
                            for e in g.edge_range(v as u32) {
                                edges += 1;
                                let u = cols[e] as usize;
                                add_f64(&residual[l * n + u], share);
                                next_ref.fetch_or(u, 1u64 << l);
                            }
                        }
                    }
                    edges
                })
                .sum::<u64>()
        });
        let Some(edges) = round else { break };
        ctx.counters.add_edges(edges);
        std::mem::swap(&mut active, &mut next);
        next.clear_all();
        enactor_iters += 1;
        ctx.end_iteration(false);
    }

    if outcome == RunOutcome::Converged && ctx.abort_requested() {
        if let Some(tripped) = guard.check(enactor_iters) {
            outcome = tripped;
            if tripped != RunOutcome::Failed {
                msppr_checkpoint(
                    ctx,
                    sources,
                    opts,
                    &scores,
                    &residual,
                    &active,
                    enactor_iters,
                );
            }
        }
    }
    for lm in [active, next] {
        lm.release(ctx.pool());
    }
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    MspprResult {
        scores: f64_values(&scores),
        sources: sources.to_vec(),
        num_vertices: n,
        edges_examined: ctx.counters.edges(),
        iterations: enactor_iters,
        elapsed: start.elapsed(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::{Coo, Csr, GraphBuilder};

    /// Serial single-source ACL push reference.
    fn serial_ppr(g: &Csr, src: u32, alpha: f64, epsilon: f64) -> Vec<f64> {
        let n = g.num_vertices();
        let mut p = vec![0.0; n];
        let mut r = vec![0.0; n];
        r[src as usize] = 1.0;
        let mut queue = vec![src as usize];
        while let Some(v) = queue.pop() {
            let deg = g.out_degree(v as u32);
            let rv = r[v];
            if rv == 0.0 {
                continue;
            }
            if deg == 0 {
                p[v] += rv;
                r[v] = 0.0;
                continue;
            }
            if rv < epsilon * deg as f64 {
                continue;
            }
            r[v] = 0.0;
            p[v] += alpha * rv;
            let share = (1.0 - alpha) * rv / deg as f64;
            for &u in g.neighbors(v as u32) {
                let had = r[u as usize] >= epsilon * g.out_degree(u).max(1) as f64;
                r[u as usize] += share;
                if !had {
                    queue.push(u as usize);
                }
            }
        }
        p
    }

    #[test]
    fn lanes_match_serial_reference_within_threshold_mass() {
        let g = GraphBuilder::new().build(rmat(8, 8, Default::default(), 6));
        let opts = MspprOptions { alpha: 0.2, epsilon: 1e-5 };
        let sources: Vec<u32> = vec![0, 3, 17, 42];
        let ctx = Context::new(&g);
        let r = msppr(&ctx, &sources, opts);
        assert_eq!(r.outcome, RunOutcome::Converged);
        for (l, &s) in sources.iter().enumerate() {
            let want = serial_ppr(&g, s, opts.alpha, opts.epsilon);
            let got = r.lane_scores(l);
            // both satisfy the ACL guarantee: per-vertex deviation is
            // bounded by the un-pushed residual mass, O(epsilon * deg)
            for v in 0..g.num_vertices() {
                let tol = opts.epsilon * g.out_degree(v as u32).max(1) as f64 * 10.0 + 1e-9;
                assert!(
                    (got[v] - want[v]).abs() <= tol,
                    "lane {l} vertex {v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn score_mass_is_conserved_per_lane() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 1200, 9));
        let opts = MspprOptions::default();
        let ctx = Context::new(&g);
        let r = msppr(&ctx, &[0, 7], opts);
        for l in 0..2 {
            let scored: f64 = r.lane_scores(l).iter().sum();
            assert!(scored > 0.0 && scored <= 1.0 + 1e-9, "lane {l} mass {scored}");
        }
    }

    #[test]
    fn dangling_source_absorbs_all_mass() {
        // vertex 2 has no out-edges
        let g = GraphBuilder::new().directed().build(Coo::from_edges(3, &[(0, 1), (1, 2)]));
        let ctx = Context::new(&g);
        let r = msppr(&ctx, &[2], MspprOptions::default());
        assert!((r.lane_scores(0)[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_resume_round_trip() {
        let g = GraphBuilder::new().build(rmat(8, 8, Default::default(), 11));
        let sources: Vec<u32> = (0..8u32).collect();
        let opts = MspprOptions { alpha: 0.3, epsilon: 1e-4 };
        let full = {
            let ctx = Context::new(&g);
            msppr(&ctx, &sources, opts)
        };
        let dir = std::env::temp_dir().join(format!(
            "msppr-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let capped = {
            let ctx = Context::new(&g)
                .with_policy(RunPolicy::unbounded().max_iterations(1))
                .with_checkpoints(CheckpointPolicy::new(1, &dir));
            msppr(&ctx, &sources, opts)
        };
        assert_eq!(capped.outcome, RunOutcome::IterationCapped);
        let ckpt = Checkpoint::load(&dir.join("msppr.ckpt")).unwrap();
        let resumed = {
            let ctx = Context::new(&g);
            msppr_resume(&ctx, &ckpt).unwrap()
        };
        assert_eq!(resumed.outcome, RunOutcome::Converged);
        // push order differs between the two runs, so compare within the
        // ACL deviation bound rather than bit-exactly
        for v in 0..g.num_vertices() {
            let tol = opts.epsilon * g.out_degree(v as u32).max(1) as f64 * 10.0 + 1e-9;
            for l in 0..sources.len() {
                assert!(
                    (resumed.lane_scores(l)[v] - full.lane_scores(l)[v]).abs() <= tol,
                    "lane {l} vertex {v}"
                );
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
