//! Betweenness centrality (§5.3), Brandes's two-phase formulation.
//!
//! "The first phase has an advance step identical to the original BFS
//! and a computation step that computes the number of shortest paths
//! from source to each vertex. The second phase uses an advance step to
//! iterate over the BFS frontier backwards with a computation step to
//! compute the dependency scores." Both phases here are advances with
//! the computation fused into the functor (edge-parallel, like the
//! gpu_BC comparison kernel).

use crate::recover::{
    check_failed, expect_len, expect_vertex_ids, malformed, scalar, to_atomic_f64,
    to_atomic_u32,
};
use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32, AtomicF64};
use gunrock_graph::{Csr, EdgeId, VertexId, INFINITY};
use std::sync::atomic::{AtomicU32, Ordering};

/// BC configuration.
#[derive(Clone, Copy, Debug)]
pub struct BcOptions {
    /// Workload mapping for both phases' advances.
    pub mode: AdvanceMode,
}

impl Default for BcOptions {
    fn default() -> Self {
        BcOptions { mode: AdvanceMode::Auto }
    }
}

/// BC output for one source.
#[derive(Clone, Debug)]
pub struct BcResult {
    /// Dependency score of each vertex for this source (the per-source
    /// betweenness contribution).
    pub bc_values: Vec<f64>,
    /// Number of shortest paths from the source to each vertex.
    pub sigmas: Vec<f64>,
    /// BFS depth of each vertex.
    pub labels: Vec<u32>,
    /// Edges examined across both phases.
    pub edges_examined: u64,
    /// Bulk-synchronous iterations executed (forward + backward).
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the enact loop ended. A trip during the forward phase leaves
    /// `bc_values` all zero (no dependency accumulated yet); a trip
    /// during the backward phase leaves them partially accumulated.
    /// `labels`/`sigmas` are always consistent for the levels completed.
    pub outcome: RunOutcome,
}

impl BcResult {
    /// Millions of traversed edges per second (both phases).
    pub fn mteps(&self) -> f64 {
        Timing { elapsed: self.elapsed, edges_examined: self.edges_examined }.mteps()
    }
}

/// Forward-phase functor: BFS labeling with fused sigma accumulation.
struct ForwardSigma<'a> {
    depth: &'a [AtomicU32],
    sigma: &'a [AtomicF64],
    level: u32,
}

impl AdvanceFunctor for ForwardSigma<'_> {
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        // ORDERING: Relaxed — racing writers store identical values (idempotent
        // level discovery); the join barrier between iterations publishes them.
        if self.depth[dst as usize].load(Ordering::Relaxed) == INFINITY {
            let _ = self.depth[dst as usize].compare_exchange(
                INFINITY,
                self.level,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        if self.depth[dst as usize].load(Ordering::Relaxed) == self.level {
            // every shortest-path edge contributes its source's count
            let _ = self.sigma[dst as usize].fetch_add(self.sigma[src as usize].load());
            true
        } else {
            false
        }
    }
}

/// Backward-phase functor: dependency accumulation along BFS edges,
/// run for effect only (the paper's second advance over the frontier
/// stack, backwards).
struct BackwardDelta<'a> {
    depth: &'a [AtomicU32],
    sigma: &'a [AtomicF64],
    delta: &'a [AtomicF64],
    level: u32,
}

impl AdvanceFunctor for BackwardDelta<'_> {
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        // ORDERING: Relaxed — racing writers store identical values (idempotent
        // level discovery); the join barrier between iterations publishes them.
        if self.depth[dst as usize].load(Ordering::Relaxed) == self.level + 1 {
            let s = self.sigma[src as usize].load() / self.sigma[dst as usize].load()
                * (1.0 + self.delta[dst as usize].load());
            let _ = self.delta[src as usize].fetch_add(s);
        }
        false // effect-only: no output frontier
    }
}

/// Per-level claim filter: a vertex enters the level frontier once.
struct ClaimLevel<'a> {
    tags: &'a [AtomicU32],
    level: u32,
}

impl FilterFunctor for ClaimLevel<'_> {
    #[inline]
    fn cond(&self, v: u32) -> bool {
        // ORDERING: Relaxed — racing writers store identical values (idempotent
        // level discovery); the join barrier between iterations publishes them.
        self.tags[v as usize].swap(self.level, Ordering::Relaxed) != self.level
    }
}

/// Which Brandes phase the run was in at snapshot time.
const PHASE_FORWARD: u32 = 0;
const PHASE_BACKWARD: u32 = 1;

/// In-flight BC loop state at an iteration boundary (what a checkpoint
/// captures; see [`bc_resume`]). `back_lvl` is the number of backward
/// sweep levels still to process (`lvl + 1` for the next level `lvl`).
struct BcLoop {
    depth: Vec<AtomicU32>,
    sigma: Vec<AtomicF64>,
    tags: Vec<AtomicU32>,
    delta: Vec<AtomicF64>,
    levels: Vec<Frontier>,
    level: u32,
    iterations: u32,
    phase: u32,
    back_lvl: u32,
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. The per-level frontier stack is flattened into
/// `levels_flat` + `level_offsets` (offsets table one longer than the
/// level count); scalars are `[src, level, phase, back_lvl]`.
#[allow(clippy::too_many_arguments)]
fn bc_checkpoint(
    ctx: &Context<'_>,
    src: VertexId,
    depth: &[AtomicU32],
    sigma: &[AtomicF64],
    tags: &[AtomicU32],
    delta: &[AtomicF64],
    levels: &[Frontier],
    level: u32,
    iterations: u32,
    phase: u32,
    back_lvl: u32,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("bc", iterations);
    ckpt.push_u32("depth", unwrap_atomic_u32(depth));
    ckpt.push_f64("sigma", sigma.iter().map(|a| a.load()).collect());
    ckpt.push_u32("tags", unwrap_atomic_u32(tags));
    ckpt.push_f64("delta", delta.iter().map(|a| a.load()).collect());
    let mut flat = Vec::new();
    let mut offsets = Vec::with_capacity(levels.len() + 1);
    offsets.push(0u32);
    for f in levels {
        flat.extend_from_slice(f.as_slice());
        offsets.push(flat.len() as u32);
    }
    ckpt.push_u32("levels_flat", flat);
    ckpt.push_u32("level_offsets", offsets);
    ckpt.push_u32("scalars", vec![src, level, phase, back_lvl]);
    ctx.save_checkpoint(&ckpt);
}

/// Runs a single-source BC pass from `src`. Summing `bc_values` over all
/// sources yields full betweenness centrality.
pub fn bc(ctx: &Context<'_>, src: VertexId, opts: BcOptions) -> BcResult {
    let n = ctx.num_vertices();
    assert!((src as usize) < n, "source out of range");
    let depth = atomic_u32_vec(n, INFINITY);
    // ORDERING: Relaxed — racing writers store identical values (idempotent
    // level discovery); the join barrier between iterations publishes them.
    depth[src as usize].store(0, Ordering::Relaxed);
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    sigma[src as usize].store(1.0);
    let st = BcLoop {
        depth,
        sigma,
        tags: atomic_u32_vec(n, u32::MAX),
        delta: (0..n).map(|_| AtomicF64::new(0.0)).collect(),
        levels: vec![Frontier::single(src)],
        level: 0,
        iterations: 0,
        phase: PHASE_FORWARD,
        back_lvl: 0,
    };
    bc_run(ctx, src, opts, st)
}

/// Resumes BC from a `gunrock-ckpt/v1` snapshot. The checkpoint's source
/// and phase position override everything but the advance mode.
pub fn bc_resume(
    ctx: &Context<'_>,
    opts: BcOptions,
    ckpt: &Checkpoint,
) -> Result<BcResult, GunrockError> {
    ckpt.expect_primitive("bc")?;
    let n = ctx.num_vertices();
    let depth = ckpt.u32s("depth")?;
    expect_len(depth.len(), n, "depth")?;
    let sigma = ckpt.f64s("sigma")?;
    expect_len(sigma.len(), n, "sigma")?;
    let tags = ckpt.u32s("tags")?;
    expect_len(tags.len(), n, "tags")?;
    let delta = ckpt.f64s("delta")?;
    expect_len(delta.len(), n, "delta")?;
    let flat = ckpt.u32s("levels_flat")?;
    expect_vertex_ids(flat, n, "levels_flat")?;
    let offsets = ckpt.u32s("level_offsets")?;
    if offsets.first() != Some(&0)
        || offsets.last().copied() != Some(flat.len() as u32)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(malformed("level_offsets is not a monotone cover of levels_flat"));
    }
    let levels: Vec<Frontier> = offsets
        .windows(2)
        .map(|w| Frontier::from_vec(flat[w[0] as usize..w[1] as usize].to_vec()))
        .collect();
    if levels.is_empty() {
        return Err(malformed("BC checkpoint has no levels"));
    }
    let scalars = ckpt.u32s("scalars")?;
    let src = scalar(scalars, 0, "src")?;
    if src as usize >= n {
        return Err(malformed(format!("source {src} out of range for {n} vertices")));
    }
    let level = scalar(scalars, 1, "level")?;
    let phase = scalar(scalars, 2, "phase")?;
    if phase != PHASE_FORWARD && phase != PHASE_BACKWARD {
        return Err(malformed(format!("unknown BC phase tag {phase}")));
    }
    let back_lvl = scalar(scalars, 3, "back_lvl")?;
    if back_lvl as usize > levels.len() {
        return Err(malformed(format!(
            "back_lvl {back_lvl} exceeds the {} recorded levels",
            levels.len()
        )));
    }
    let st = BcLoop {
        depth: to_atomic_u32(depth),
        sigma: to_atomic_f64(sigma),
        tags: to_atomic_u32(tags),
        delta: to_atomic_f64(delta),
        levels,
        level,
        iterations: ckpt.iteration(),
        phase,
        back_lvl,
    };
    let r = bc_run(ctx, src, opts, st);
    check_failed(ctx, r.outcome, r)
}

/// The enact loop proper, starting from an arbitrary iteration-boundary
/// state (fresh from [`bc`] or restored by [`bc_resume`]).
fn bc_run(ctx: &Context<'_>, src: VertexId, opts: BcOptions, st: BcLoop) -> BcResult {
    let start = std::time::Instant::now();
    // Budget admission: demote the advance mode (or poison with a
    // structured BudgetExceeded) before the first operator launches.
    let opts = BcOptions { mode: crate::admission::admit(ctx, "bc", opts.mode) };
    let BcLoop {
        depth,
        sigma,
        tags,
        delta,
        mut levels,
        mut level,
        mut iterations,
        mut phase,
        mut back_lvl,
    } = st;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    macro_rules! boundary {
        () => {
            if ctx.checkpoint_due(iterations) {
                bc_checkpoint(
                    ctx, src, &depth, &sigma, &tags, &delta, &levels, level, iterations, phase,
                    back_lvl,
                );
            }
            if let Some(tripped) = guard.check(iterations) {
                outcome = tripped;
                if tripped != RunOutcome::Failed {
                    bc_checkpoint(
                        ctx, src, &depth, &sigma, &tags, &delta, &levels, level, iterations,
                        phase, back_lvl,
                    );
                }
                break;
            }
        };
    }

    // Phase 1: forward BFS with fused sigma accumulation.
    if phase == PHASE_FORWARD {
        loop {
            boundary!();
            level += 1;
            iterations += 1;
            ctx.end_iteration(false);
            let f = ForwardSigma { depth: &depth, sigma: &sigma, level };
            let spec = AdvanceSpec::v2v().with_mode(opts.mode);
            // LINT-ALLOW(panic): `levels` starts with the source level and only
            // ever grows, so `last()` cannot fail.
            let raw = advance::advance(ctx, levels.last().unwrap(), spec, &f);
            let next = filter::filter(ctx, &raw, &ClaimLevel { tags: &tags, level });
            // the level stack keeps `next`; only the raw intermediate is
            // dead and recyclable
            ctx.recycle(raw);
            if next.is_empty() {
                ctx.recycle(next);
                break;
            }
            levels.push(next);
        }
        // Hand over to the backward sweep only on convergence — a trip
        // leaves half-built sigmas that would make dependency sums
        // meaningless, and a resume re-enters the forward phase instead.
        if outcome == RunOutcome::Converged {
            phase = PHASE_BACKWARD;
            back_lvl = levels.len() as u32 - 1;
        }
    }

    // Phase 2: backward sweep over the frontier stack.
    if phase == PHASE_BACKWARD && outcome == RunOutcome::Converged {
        while back_lvl > 0 {
            boundary!();
            iterations += 1;
            ctx.end_iteration(false);
            let lvl = (back_lvl - 1) as usize;
            let f = BackwardDelta {
                depth: &depth,
                sigma: &sigma,
                delta: &delta,
                level: lvl as u32,
            };
            let spec = AdvanceSpec::for_effect().with_mode(opts.mode);
            let _ = advance::advance(ctx, &levels[lvl], spec, &f);
            back_lvl -= 1;
        }
    }

    // the level stack's frontiers still own pooled storage; return them
    // so a re-run on this context starts with a warm pool
    for lvl in levels {
        ctx.recycle(lvl);
    }
    // a panic that emptied the frontier must not read as convergence
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    let mut bc_values: Vec<f64> = delta.iter().map(|a| a.load()).collect();
    bc_values[src as usize] = 0.0;
    BcResult {
        bc_values,
        sigmas: sigma.iter().map(|a| a.load()).collect(),
        labels: unwrap_atomic_u32(&depth),
        edges_examined: ctx.counters.edges(),
        iterations,
        elapsed: start.elapsed(),
        outcome,
    }
}

/// Full betweenness centrality by enacting every source (tests and small
/// graphs; the paper's evaluation times single-source enactments).
pub fn bc_all_sources(g: &Csr, opts: BcOptions) -> Vec<f64> {
    let n = g.num_vertices();
    let mut total = vec![0.0f64; n];
    for s in 0..n as VertexId {
        let ctx = Context::new(g);
        for (v, d) in bc(&ctx, s, opts).bc_values.into_iter().enumerate() {
            total[v] += d;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_serial_brandes_on_suite() {
        let graphs = [
            GraphBuilder::new().build(erdos_renyi(300, 900, 1)),
            GraphBuilder::new().build(rmat(8, 8, Default::default(), 2)),
            GraphBuilder::new().build(grid2d(15, 15, 0.1, 0.0, 3)),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let ctx = Context::new(g);
            let r = bc(&ctx, 0, BcOptions::default());
            let want = serial::brandes_single_source(g, 0);
            close(&r.bc_values, &want, 1e-6);
            assert_eq!(r.labels, serial::bfs(g, 0), "graph {i}");
        }
    }

    #[test]
    fn sigma_counts_shortest_paths() {
        // diamond: 0-1, 0-2, 1-3, 2-3: two shortest paths 0..3
        let g =
            GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        let ctx = Context::new(&g);
        let r = bc(&ctx, 0, BcOptions::default());
        assert_eq!(r.sigmas, vec![1.0, 1.0, 1.0, 2.0]);
        // each middle vertex carries half the dependency of vertex 3
        assert!((r.bc_values[1] - 0.5).abs() < 1e-12);
        assert!((r.bc_values[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_modes_agree() {
        let g = GraphBuilder::new().build(rmat(8, 16, Default::default(), 5));
        let want = serial::brandes_single_source(&g, 2);
        for mode in [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced] {
            let ctx = Context::new(&g);
            let r = bc(&ctx, 2, BcOptions { mode });
            close(&r.bc_values, &want, 1e-6);
        }
    }

    #[test]
    fn full_bc_matches_serial_on_small_graph() {
        let g = GraphBuilder::new().build(erdos_renyi(60, 150, 7));
        let got = bc_all_sources(&g, BcOptions::default());
        let want = serial::betweenness_centrality(&g);
        close(&got, &want, 1e-6);
    }

    #[test]
    fn forward_phase_cap_yields_partial_depths_and_zero_scores() {
        let g = GraphBuilder::new().build(grid2d(15, 15, 0.0, 0.0, 11));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(2));
        let r = bc(&ctx, 0, BcOptions::default());
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 2);
        // two completed forward levels: depths 0..=2 settled, deeper
        // vertices untouched; no dependency was accumulated
        let full = serial::bfs(&g, 0);
        for (v, &depth) in full.iter().enumerate() {
            if depth <= 2 {
                assert_eq!(r.labels[v], depth, "vertex {v}");
            } else {
                assert_eq!(r.labels[v], INFINITY, "vertex {v}");
            }
        }
        assert!(r.bc_values.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn source_score_is_zero() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 400, 9));
        let ctx = Context::new(&g);
        let r = bc(&ctx, 5, BcOptions::default());
        assert_eq!(r.bc_values[5], 0.0);
    }
}
