//! Label-propagation community detection — the algorithm family §4.1.1
//! names as a beneficiary of frontier reorganization ("this will
//! potentially increase the performance of various types of community
//! detection and label propagation algorithms").
//!
//! Synchronous LPA in the frontier model: every active vertex adopts the
//! most frequent label among its neighbors (ties to the smallest label
//! for determinism); vertices whose label changed activate their
//! neighbors for the next round. Converges when the frontier empties or
//! the round cap is hit (plain LPA can oscillate on bipartite
//! structures; the cap plus tie-breaking keeps runs bounded and
//! deterministic).

use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_graph::VertexId;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

/// Label-propagation output.
#[derive(Clone, Debug)]
pub struct LabelPropResult {
    /// Final community label per vertex.
    pub labels: Vec<VertexId>,
    /// Number of distinct communities.
    pub num_communities: usize,
    /// Rounds executed.
    pub rounds: u32,
    /// How the loop ended. LPA labels are usable at any round boundary —
    /// a partial outcome just means coarser communities than the run
    /// would have settled on. The algorithm's own `max_rounds` cap
    /// counts as convergence; only the context's [`RunPolicy`] produces
    /// partial outcomes.
    pub outcome: RunOutcome,
}

/// Runs synchronous label propagation for at most `max_rounds`.
pub fn label_propagation(ctx: &Context<'_>, max_rounds: u32) -> LabelPropResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    let labels = atomic_u32_vec(n, 0);
    // ORDERING: Relaxed — label cells tolerate stale reads by design (async
    // propagation); join barriers bound the staleness per sweep.
    labels.par_iter().enumerate().for_each(|(v, l)| l.store(v as u32, Ordering::Relaxed));
    let mut frontier = Frontier::full(n);
    let mut rounds = 0u32;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    while !frontier.is_empty() && rounds < max_rounds {
        if let Some(tripped) = guard.check(rounds) {
            outcome = tripped;
            break;
        }
        rounds += 1;
        ctx.end_iteration(false);
        // compute step: each active vertex picks its neighbors' majority
        // label from the *previous* round's labels (synchronous LPA),
        // so snapshot first
        let snapshot: Vec<u32> = unwrap_atomic_u32(&labels);
        let changed: Vec<u32> = frontier
            .as_slice()
            .par_iter()
            .copied()
            .filter(|&v| {
                let neigh = g.neighbors(v);
                if neigh.is_empty() {
                    return false;
                }
                // majority label among neighbors; smallest label wins ties.
                // neighbor lists are modest: count into a local sorted vec
                let mut counts: Vec<(u32, u32)> = Vec::with_capacity(neigh.len());
                for &u in neigh {
                    let l = snapshot[u as usize];
                    match counts.binary_search_by_key(&l, |&(l, _)| l) {
                        Ok(i) => counts[i].1 += 1,
                        Err(i) => counts.insert(i, (l, 1)),
                    }
                }
                let best = counts
                    .iter()
                    .copied()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map_or(snapshot[v as usize], |(l, _)| l);
                if best != snapshot[v as usize] {
                    labels[v as usize].store(best, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            })
            .collect();
        ctx.counters
            .add_edges(frontier.as_slice().iter().map(|&v| g.out_degree(v) as u64).sum());
        // next frontier: neighbors of changed vertices (deduplicated)
        let bm = AtomicBitmap::new(n);
        let next: Vec<Vec<u32>> = changed
            .par_iter()
            .map(|&v| {
                let mut local = Vec::new();
                for &u in g.neighbors(v) {
                    if !bm.test_and_set(u as usize) {
                        local.push(u);
                    }
                }
                local
            })
            .collect();
        frontier = Frontier::from_vec(next.concat());
    }
    let final_labels = unwrap_atomic_u32(&labels);
    let mut distinct: Vec<u32> = final_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    LabelPropResult { labels: final_labels, num_communities: distinct.len(), rounds, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::erdos_renyi;
    use gunrock_graph::{Coo, GraphBuilder};

    fn two_cliques_with_bridge() -> gunrock_graph::Csr {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        for i in 8..16u32 {
            for j in (i + 1)..16 {
                edges.push((i, j));
            }
        }
        edges.push((7, 8));
        GraphBuilder::new().build(Coo::from_edges(16, &edges))
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques_with_bridge();
        let ctx = Context::new(&g);
        let r = label_propagation(&ctx, 50);
        // each clique is internally uniform
        let first = &r.labels[..8];
        let second = &r.labels[8..];
        assert!(first.iter().all(|&l| l == first[0]), "{:?}", r.labels);
        assert!(second.iter().all(|&l| l == second[0]), "{:?}", r.labels);
        assert_ne!(first[0], second[0], "cliques form distinct communities");
        assert_eq!(r.num_communities, 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
    fn communities_never_cross_connected_components() {
        let g = GraphBuilder::new().build(erdos_renyi(150, 180, 3));
        let ctx = Context::new(&g);
        let r = label_propagation(&ctx, 50);
        let cc = serial::connected_components(&g);
        // two vertices in different components can never share a label
        // (labels only propagate along edges)
        let mut label_to_component = std::collections::HashMap::new();
        for v in 0..g.num_vertices() {
            if g.out_degree(v as u32) == 0 {
                continue; // isolated vertices keep their own label
            }
            let prev = label_to_component.insert(r.labels[v], cc[v]);
            if let Some(c) = prev {
                assert_eq!(c, cc[v], "label crosses components");
            }
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_labels() {
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1)]));
        let ctx = Context::new(&g);
        let r = label_propagation(&ctx, 10);
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[3], 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = GraphBuilder::new().build(erdos_renyi(200, 700, 9));
        let run = || {
            let ctx = Context::new(&g);
            label_propagation(&ctx, 30).labels
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn round_cap_bounds_work() {
        let g = GraphBuilder::new().build(erdos_renyi(100, 300, 5));
        let ctx = Context::new(&g);
        let r = label_propagation(&ctx, 3);
        assert!(r.rounds <= 3);
        // the algorithm's own cap is convergence, not a policy trip
        assert_eq!(r.outcome, RunOutcome::Converged);
    }

    #[test]
    fn policy_cap_yields_partial_communities() {
        let g = two_cliques_with_bridge();
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = label_propagation(&ctx, 50);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.rounds, 1);
        // one round of LPA has merged labels but not yet settled: still
        // a valid labeling (every label is some vertex id)
        assert!(r.labels.iter().all(|&l| (l as usize) < g.num_vertices()));
        assert!(r.num_communities < g.num_vertices());
    }
}
