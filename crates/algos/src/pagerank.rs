//! PageRank (§5.5).
//!
//! "In Gunrock, we begin with a frontier that contains all vertices in
//! the graph and end when all vertices have converged. Each iteration
//! contains one advance operator to compute the PageRank value on the
//! frontier of vertices, and one filter operator to remove the vertices
//! whose PageRanks have already converged. We accumulate PageRank values
//! with AtomicAdd operations."
//!
//! Realized as residual (push-style) PageRank: every frontier vertex
//! pushes `d * residual / degree` to its neighbors via atomic adds; a
//! vertex re-enters the frontier while its incoming residual exceeds the
//! tolerance. The fixed point is the standard PageRank vector (teleport
//! `(1-d)/n`), so results are directly comparable to power iteration.

use crate::recover::{check_failed, expect_len, expect_vertex_ids, malformed};
use gunrock::prelude::*;
use gunrock_engine::atomics::AtomicF64;
use gunrock_engine::compact::compact_indices;
use gunrock_graph::{EdgeId, VertexId};
use rayon::prelude::*;

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PrOptions {
    /// Damping factor (`d` in the PageRank equation).
    pub damping: f64,
    /// Convergence tolerance. For [`pagerank`] (push): per-vertex pending
    /// residual mass — a vertex below it leaves the frontier. For
    /// [`pagerank_pull`]: global L1 change per iteration (there is no
    /// per-vertex frontier in the dense gather). The pull threshold is
    /// the coarser of the two for equal values.
    pub epsilon: f64,
    /// Hard iteration cap (`1` reproduces the paper's one-iteration
    /// Ligra comparison).
    pub max_iters: usize,
    /// Workload mapping for the push advance.
    pub mode: AdvanceMode,
}

impl Default for PrOptions {
    fn default() -> Self {
        PrOptions { damping: 0.85, epsilon: 1e-9, max_iters: 1000, mode: AdvanceMode::Auto }
    }
}

/// PageRank output.
#[derive(Clone, Debug)]
pub struct PrResult {
    /// Converged scores (sum to ~1; dangling mass teleports uniformly).
    pub scores: Vec<f64>,
    /// Bulk-synchronous iterations executed.
    pub iterations: u32,
    /// Edges pushed across over all iterations.
    pub edges_examined: u64,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the enact loop ended. A partial outcome still carries a
    /// usable score vector: residual mass not yet propagated is folded
    /// back in, so scores always sum to ~1 — they are simply further
    /// from the fixed point. The algorithm's own `max_iters` knob counts
    /// as convergence; only the context's [`RunPolicy`] produces partial
    /// outcomes.
    pub outcome: RunOutcome,
}

/// Residual-push functor: scatter the source's frozen residual share to
/// the destination's accumulator (the paper's AtomicAdd accumulation).
struct PushResidual<'a> {
    graph: &'a gunrock_graph::Csr,
    residual_in: &'a [f64],
    acc: &'a [AtomicF64],
    damping: f64,
}

impl AdvanceFunctor for PushResidual<'_> {
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, _e: EdgeId) -> bool {
        let deg = self.graph.out_degree(src) as f64;
        let _ = self.acc[dst as usize]
            .fetch_add(self.damping * self.residual_in[src as usize] / deg);
        false // effect-only
    }
}

/// In-flight PageRank loop state at an iteration boundary. The snapshot
/// is taken *before* the final sub-threshold residual fold, so a resumed
/// run absorbs exactly the residual an uninterrupted one would have —
/// `f64` sections round-trip bit-exactly, making resume bit-identical.
struct PrLoop {
    scores: Vec<f64>,
    residual: Vec<f64>,
    frontier: Frontier,
    iterations: u32,
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. Sections: `scores`/`residual` (f64, bit-exact), the live
/// `frontier`, and `params` `[damping, epsilon]`.
fn pagerank_checkpoint(
    ctx: &Context<'_>,
    opts: &PrOptions,
    scores: &[f64],
    residual: &[f64],
    frontier: &Frontier,
    iterations: u32,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("pagerank", iterations);
    ckpt.push_f64("scores", scores.to_vec());
    ckpt.push_f64("residual", residual.to_vec());
    ckpt.push_u32("frontier", frontier.as_slice().to_vec());
    ckpt.push_f64("params", vec![opts.damping, opts.epsilon]);
    ctx.save_checkpoint(&ckpt);
}

/// Runs PageRank over the whole graph.
pub fn pagerank(ctx: &Context<'_>, opts: PrOptions) -> PrResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    if n == 0 {
        return PrResult {
            scores: Vec::new(),
            iterations: 0,
            edges_examined: 0,
            elapsed: std::time::Duration::ZERO,
            outcome: RunOutcome::Converged,
        };
    }
    let base = (1.0 - opts.damping) / n as f64;
    let st = PrLoop {
        scores: vec![0.0f64; n],
        // every vertex starts with the teleport mass as pending residual
        residual: vec![base; n],
        frontier: Frontier::full(n),
        iterations: 0,
    };
    pagerank_run(ctx, opts, st)
}

/// Resumes PageRank from a `gunrock-ckpt/v1` snapshot. The checkpoint's
/// damping and epsilon override `opts` (changing them mid-run would
/// converge to a different fixed point); `max_iters` and the advance
/// mode still come from `opts`.
pub fn pagerank_resume(
    ctx: &Context<'_>,
    opts: PrOptions,
    ckpt: &Checkpoint,
) -> Result<PrResult, GunrockError> {
    ckpt.expect_primitive("pagerank")?;
    let n = ctx.num_vertices();
    let scores = ckpt.f64s("scores")?;
    expect_len(scores.len(), n, "scores")?;
    let residual = ckpt.f64s("residual")?;
    expect_len(residual.len(), n, "residual")?;
    let frontier = ckpt.u32s("frontier")?;
    expect_vertex_ids(frontier, n, "frontier")?;
    let params = ckpt.f64s("params")?;
    let [damping, epsilon] = params else {
        return Err(malformed(format!("params must be [damping, epsilon], got {params:?}")));
    };
    let opts = PrOptions { damping: *damping, epsilon: *epsilon, ..opts };
    let st = PrLoop {
        scores: scores.to_vec(),
        residual: residual.to_vec(),
        frontier: Frontier::from_vec(frontier.to_vec()),
        iterations: ckpt.iteration(),
    };
    let r = pagerank_run(ctx, opts, st);
    check_failed(ctx, r.outcome, r)
}

/// The enact loop proper, starting from an arbitrary iteration-boundary
/// state (fresh from [`pagerank`] or restored by [`pagerank_resume`]).
fn pagerank_run(ctx: &Context<'_>, opts: PrOptions, st: PrLoop) -> PrResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    let start = std::time::Instant::now();
    // Budget admission: demote the advance mode (or poison with a
    // structured BudgetExceeded) before the first operator launches.
    let opts = PrOptions { mode: crate::admission::admit(ctx, "pagerank", opts.mode), ..opts };
    let PrLoop { mut scores, mut residual, mut frontier, mut iterations } = st;
    // reused accumulator (zeroed as it is drained each iteration)
    let acc: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;

    while !frontier.is_empty() && (iterations as usize) < opts.max_iters {
        if ctx.checkpoint_due(iterations) {
            pagerank_checkpoint(ctx, &opts, &scores, &residual, &frontier, iterations);
        }
        if let Some(tripped) = guard.check(iterations) {
            outcome = tripped;
            if tripped != RunOutcome::Failed {
                pagerank_checkpoint(ctx, &opts, &scores, &residual, &frontier, iterations);
            }
            break;
        }
        iterations += 1;
        ctx.end_iteration(false);
        // absorb frontier residuals into the scores (compute step); a
        // dangling (out-degree 0) vertex cannot push, so its damped mass
        // teleports uniformly, matching the power-iteration fixed point
        let mut dangling = 0.0f64;
        for &v in frontier.as_slice() {
            scores[v as usize] += residual[v as usize];
            if g.out_degree(v) == 0 {
                dangling += opts.damping * residual[v as usize];
            }
        }
        // push: advance for effect with atomic accumulation
        let functor =
            PushResidual { graph: g, residual_in: &residual, acc: &acc, damping: opts.damping };
        let spec = AdvanceSpec::for_effect().with_mode(opts.mode);
        let _ = advance::advance(ctx, &frontier, spec, &functor);
        // consumed residuals are gone; newly received ones replace them
        for &v in frontier.as_slice() {
            residual[v as usize] = 0.0;
        }
        let teleport = dangling / n as f64;
        residual.par_iter_mut().zip(acc.par_iter()).for_each(|(r, a)| {
            *r += a.load() + teleport;
            a.store(0.0);
        });
        // filter: vertices with enough pending residual re-enter
        let eps = opts.epsilon;
        let next = compact_indices(&residual, |&r| r > eps);
        ctx.recycle(std::mem::replace(&mut frontier, Frontier::from_vec(next)));
    }
    // fold any remaining sub-threshold residual into the scores
    scores.par_iter_mut().zip(residual.par_iter()).for_each(|(s, r)| *s += r);

    // the loop's last frontier still owns pooled storage; return it so
    // a re-run on this context starts with a warm pool
    ctx.recycle(frontier);
    // a panic that emptied the frontier must not read as convergence
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    PrResult {
        scores,
        iterations,
        edges_examined: ctx.counters.edges(),
        elapsed: start.elapsed(),
        outcome,
    }
}

/// Edge throughput: every iteration touches the frontier's out-edges.
pub fn pr_mteps(result: &PrResult) -> f64 {
    Timing { elapsed: result.elapsed, edges_examined: result.edges_examined }.mteps()
}

/// Pull-mode (gather) PageRank built on the [`neighbor_reduce`]
/// operator — the atomic-free path §4.5 describes ("Gunrock ... supports
/// both push-based (scatter) communication and pull-based (gather)
/// communication during traversal steps") and §7 motivates ("global and
/// neighborhood operations ... generally require less-efficient atomic
/// operations"; gather-reduce removes them). Synchronous full-frontier
/// iterations: each vertex gathers `pr[u] / deg(u)` over its in-edges
/// (== out-edges on the undirected benchmark graphs; pass the reverse
/// graph as `ctx.graph` for directed inputs).
pub fn pagerank_pull(ctx: &Context<'_>, opts: PrOptions) -> PrResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    let start = std::time::Instant::now();
    if n == 0 {
        return PrResult {
            scores: Vec::new(),
            iterations: 0,
            edges_examined: 0,
            elapsed: start.elapsed(),
            outcome: RunOutcome::Converged,
        };
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let frontier = Frontier::full(n);
    let mut iterations = 0u32;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    while (iterations as usize) < opts.max_iters {
        if let Some(tripped) = guard.check(iterations) {
            outcome = tripped;
            break;
        }
        iterations += 1;
        ctx.end_iteration(false);
        let dangling: f64 =
            (0..n as u32).filter(|&v| g.out_degree(v) == 0).map(|v| pr[v as usize]).sum();
        let teleport = base + opts.damping * dangling / n as f64;
        let pr_ref = &pr;
        let gathered = neighbor_reduce(
            ctx,
            &frontier,
            0.0f64,
            |_v, u, _e| {
                let deg = g.out_degree(u);
                if deg == 0 {
                    0.0
                } else {
                    pr_ref[u as usize] / deg as f64
                }
            },
            |a, b| a + b,
        );
        let next: Vec<f64> =
            gathered.into_par_iter().map(|acc| teleport + opts.damping * acc).collect();
        let l1: f64 = pr.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).sum();
        pr = next;
        if l1 < opts.epsilon {
            break;
        }
    }
    PrResult {
        scores: pr,
        iterations,
        edges_examined: ctx.counters.edges(),
        elapsed: start.elapsed(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
    fn pull_mode_matches_push_mode_and_oracle() {
        let g = GraphBuilder::new().build(rmat(8, 16, Default::default(), 6));
        let want = serial::pagerank(&g, 0.85, 1e-14, 2000);
        let pull = {
            let ctx = Context::new(&g);
            pagerank_pull(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() })
        };
        let push = {
            let ctx = Context::new(&g);
            pagerank(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() })
        };
        for v in 0..g.num_vertices() {
            assert!((pull.scores[v] - want[v]).abs() < 1e-6, "pull vertex {v}");
            assert!((pull.scores[v] - push.scores[v]).abs() < 1e-6, "pull vs push {v}");
        }
    }

    #[test]
    fn matches_power_iteration() {
        let graphs = [
            GraphBuilder::new().build(erdos_renyi(300, 1500, 1)),
            GraphBuilder::new().build(rmat(8, 16, Default::default(), 2)),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let ctx = Context::new(g);
            let got = pagerank(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() });
            let want = serial::pagerank(g, 0.85, 1e-14, 2000);
            for (v, (a, b)) in got.scores.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-6, "graph {i} vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scores_sum_to_one_even_with_isolated_vertices() {
        // rmat leaves isolated vertices; their mass must teleport, not leak
        let g = GraphBuilder::new().build(rmat(9, 16, Default::default(), 3));
        let ctx = Context::new(&g);
        let r = pagerank(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() });
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn hub_ranks_highest_on_star() {
        let g = GraphBuilder::new()
            .build(Coo::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]));
        let ctx = Context::new(&g);
        let r = pagerank(&ctx, PrOptions::default());
        for v in 1..6 {
            assert!(r.scores[0] > r.scores[v]);
        }
    }

    #[test]
    fn one_iteration_mode_stops_early() {
        let g = GraphBuilder::new().build(erdos_renyi(200, 800, 5));
        let ctx = Context::new(&g);
        let r = pagerank(&ctx, PrOptions { max_iters: 1, ..Default::default() });
        assert_eq!(r.iterations, 1);
        // after one push every vertex holds teleport + one hop of mass
        assert!(r.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn frontier_shrinks_over_time() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 1200, 6));
        let loose = {
            let ctx = Context::new(&g);
            pagerank(&ctx, PrOptions { epsilon: 1e-4, ..Default::default() })
        };
        let tight = {
            let ctx = Context::new(&g);
            pagerank(&ctx, PrOptions { epsilon: 1e-10, ..Default::default() })
        };
        assert!(loose.iterations < tight.iterations);
        assert!(loose.edges_examined < tight.edges_examined);
    }

    #[test]
    fn policy_cap_yields_partial_but_mass_conserving_scores() {
        let g = GraphBuilder::new().build(erdos_renyi(300, 1200, 8));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(2));
        let r = pagerank(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() });
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 2);
        // unpropagated residual folds back in: after k completed rounds
        // the absorbed mass is exactly (1-d)(1 + d + ... + d^k) = 1-d^(k+1)
        let sum: f64 = r.scores.iter().sum();
        let want = 1.0 - 0.85f64.powi(3);
        assert!((sum - want).abs() < 1e-9, "sum {sum}, want {want}");
        // the algorithm's own cap is NOT a policy trip
        let ctx = Context::new(&g);
        let own = pagerank(&ctx, PrOptions { max_iters: 1, ..Default::default() });
        assert_eq!(own.outcome, RunOutcome::Converged);
        // pull mode honors the policy too
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(2));
        let pull = pagerank_pull(&ctx, PrOptions { epsilon: 1e-12, ..Default::default() });
        assert_eq!(pull.outcome, RunOutcome::IterationCapped);
        assert_eq!(pull.iterations, 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build(Coo::new(0));
        let ctx = Context::new(&g);
        let r = pagerank(&ctx, PrOptions::default());
        assert!(r.scores.is_empty());
    }
}
