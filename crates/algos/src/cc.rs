//! Connected component labeling (§5.4), after Soman et al.
//!
//! "Gunrock uses a filter operator on an edge frontier to implement
//! hooking. The frontier starts with all edges and during each
//! iteration, one end vertex of each edge in the frontier tries to
//! assign its component ID to the other vertex, and the filter step
//! removes the edge whose two end vertices have the same component ID.
//! [...] then proceed[s] to pointer-jumping, where a filter operator on
//! vertices assigns the component ID of each vertex to its parent's
//! component ID until it reaches the root."
//!
//! This is the one primitive whose frontier is *edges* throughout —
//! exercising the edge-frontier side of the data-centric abstraction.

use crate::recover::{
    check_failed, expect_len, expect_vertex_ids, malformed, scalar, to_atomic_u32,
};
use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// CC output.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Component label per vertex: the minimum vertex id in its component
    /// (canonical labeling).
    pub labels: Vec<VertexId>,
    /// Number of connected components (isolated vertices count).
    pub num_components: usize,
    /// Hooking + pointer-jumping iterations executed.
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the enact loop ended. On a partial outcome `labels` is a
    /// valid *refinement* of the final components (vertices with equal
    /// labels really are connected; some components may still be split
    /// across several labels) and `num_components` counts the current
    /// label roots, an upper bound on the true component count.
    pub outcome: RunOutcome,
}

/// Hooking functor over the edge frontier: hooks the larger-labeled
/// root under the smaller label; an edge stays in the frontier while its
/// endpoints' components differ.
struct Hook<'a> {
    edge_src: &'a [u32],
    edge_dst: &'a [u32],
    labels: &'a [AtomicU32],
    changed: &'a AtomicBool,
}

impl FilterFunctor for Hook<'_> {
    #[inline]
    fn cond(&self, e: u32) -> bool {
        let u = self.edge_src[e as usize] as usize;
        let v = self.edge_dst[e as usize] as usize;
        // ORDERING: Relaxed — hook/pointer-jump updates are monotonic fetch_min
        // races; only the eventual minimum matters and join barriers order rounds.
        let lu = self.labels[u].load(Ordering::Relaxed);
        let lv = self.labels[v].load(Ordering::Relaxed);
        if lu == lv {
            return false; // converged edge: filtered out
        }
        let (hi, lo) = if lu > lv { (lu, lv) } else { (lv, lu) };
        if self.labels[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
            self.changed.store(true, Ordering::Relaxed);
        }
        true // endpoints still differ: keep the edge for the next pass
    }
}

/// Pointer-jumping functor over the vertex frontier: `label[v] =
/// label[label[v]]`; a vertex stays while its label is not a root.
struct Jump<'a> {
    labels: &'a [AtomicU32],
}

impl FilterFunctor for Jump<'_> {
    #[inline]
    fn cond(&self, v: u32) -> bool {
        // ORDERING: Relaxed — hook/pointer-jump updates are monotonic fetch_min
        // races; only the eventual minimum matters and join barriers order rounds.
        let l = self.labels[v as usize].load(Ordering::Relaxed);
        let ll = self.labels[l as usize].load(Ordering::Relaxed);
        if ll < l {
            self.labels[v as usize].fetch_min(ll, Ordering::Relaxed);
            // keep v in the frontier: its new parent may not be a root yet
            true
        } else {
            false
        }
    }
}

/// Which half of the Soman round the run was in at snapshot time.
const PHASE_HOOKING: u32 = 0;
const PHASE_JUMPING: u32 = 1;

/// In-flight CC loop state at an iteration boundary (what a checkpoint
/// captures; see [`cc_resume`]). The edge endpoint arrays are derived
/// from the graph and rebuilt on resume, never stored.
struct CcLoop {
    labels: Vec<AtomicU32>,
    edge_frontier: Frontier,
    vertex_frontier: Frontier,
    iterations: u32,
    phase: u32,
}

/// Writes an iteration-boundary snapshot when a checkpoint policy is
/// installed. Sections: per-vertex `labels`, the live `edge_frontier`
/// (edge ids) and `vertex_frontier`, plus the scalar `[phase]`.
fn cc_checkpoint(
    ctx: &Context<'_>,
    labels: &[AtomicU32],
    edge_frontier: &Frontier,
    vertex_frontier: &Frontier,
    iterations: u32,
    phase: u32,
) {
    if ctx.checkpoint_policy().is_none() {
        return;
    }
    let mut ckpt = Checkpoint::new("cc", iterations);
    ckpt.push_u32("labels", unwrap_atomic_u32(labels));
    ckpt.push_u32("edge_frontier", edge_frontier.as_slice().to_vec());
    ckpt.push_u32("vertex_frontier", vertex_frontier.as_slice().to_vec());
    ckpt.push_u32("scalars", vec![phase]);
    ctx.save_checkpoint(&ckpt);
}

/// Labels connected components. Works on the undirected interpretation
/// of the graph (each undirected edge may appear in either or both
/// directions; both work).
pub fn cc(ctx: &Context<'_>) -> CcResult {
    let n = ctx.num_vertices();
    let labels = atomic_u32_vec(n, 0);
    // ORDERING: Relaxed — hook/pointer-jump updates are monotonic fetch_min
    // races; only the eventual minimum matters and join barriers order rounds.
    labels.par_iter().enumerate().for_each(|(v, l)| l.store(v as u32, Ordering::Relaxed));
    let st = CcLoop {
        labels,
        edge_frontier: Frontier::full(ctx.graph.num_edges()),
        vertex_frontier: Frontier::new(),
        iterations: 0,
        phase: PHASE_HOOKING,
    };
    cc_run(ctx, st)
}

/// Resumes CC from a `gunrock-ckpt/v1` snapshot.
pub fn cc_resume(ctx: &Context<'_>, ckpt: &Checkpoint) -> Result<CcResult, GunrockError> {
    ckpt.expect_primitive("cc")?;
    let n = ctx.num_vertices();
    let m = ctx.graph.num_edges();
    let labels = ckpt.u32s("labels")?;
    expect_len(labels.len(), n, "labels")?;
    expect_vertex_ids(labels, n, "labels")?;
    let edge_frontier = ckpt.u32s("edge_frontier")?;
    expect_vertex_ids(edge_frontier, m, "edge_frontier")?;
    let vertex_frontier = ckpt.u32s("vertex_frontier")?;
    expect_vertex_ids(vertex_frontier, n, "vertex_frontier")?;
    let scalars = ckpt.u32s("scalars")?;
    let phase = scalar(scalars, 0, "phase")?;
    if phase != PHASE_HOOKING && phase != PHASE_JUMPING {
        return Err(malformed(format!("unknown CC phase tag {phase}")));
    }
    let st = CcLoop {
        labels: to_atomic_u32(labels),
        edge_frontier: Frontier::from_vec(edge_frontier.to_vec()),
        vertex_frontier: Frontier::from_vec(vertex_frontier.to_vec()),
        iterations: ckpt.iteration(),
        phase,
    };
    let r = cc_run(ctx, st);
    check_failed(ctx, r.outcome, r)
}

/// The enact loop proper, an explicit two-phase state machine so a
/// checkpoint taken mid pointer-jumping re-enters the right half of the
/// Soman round.
fn cc_run(ctx: &Context<'_>, st: CcLoop) -> CcResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    let start = std::time::Instant::now();
    // Budget admission: CC has no advance-mode knob, but a hopeless
    // budget still poisons up front (structured BudgetExceeded) instead
    // of aborting mid-run.
    let _ = crate::admission::admit(ctx, "cc", AdvanceMode::Auto);
    let CcLoop { labels, mut edge_frontier, mut vertex_frontier, mut iterations, mut phase } =
        st;
    // edge endpoint arrays for the edge frontier (edge id -> endpoints)
    let edge_dst: &[u32] = g.col_indices();
    let edge_src: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .flat_map_iter(|v| std::iter::repeat_n(v, g.out_degree(v) as usize))
        .collect();

    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    'enact: loop {
        if phase == PHASE_HOOKING && edge_frontier.is_empty() {
            break;
        }
        if ctx.checkpoint_due(iterations) {
            cc_checkpoint(ctx, &labels, &edge_frontier, &vertex_frontier, iterations, phase);
        }
        if let Some(tripped) = guard.check(iterations) {
            outcome = tripped;
            if tripped != RunOutcome::Failed {
                cc_checkpoint(
                    ctx,
                    &labels,
                    &edge_frontier,
                    &vertex_frontier,
                    iterations,
                    phase,
                );
            }
            break 'enact;
        }
        iterations += 1;
        ctx.end_iteration(false);
        if phase == PHASE_HOOKING {
            // Hooking pass: filter on the edge frontier; edges whose
            // endpoints already share a component are filtered out.
            let changed = AtomicBool::new(false);
            let hook =
                Hook { edge_src: &edge_src, edge_dst, labels: &labels, changed: &changed };
            let kept = filter::filter(ctx, &edge_frontier, &hook);
            ctx.recycle(std::mem::replace(&mut edge_frontier, kept));
            // Pointer jumping runs next, until all labels point at roots
            // (labels may differ only through stale pointers: jumping
            // reconciles them).
            ctx.recycle(std::mem::replace(&mut vertex_frontier, Frontier::full(n)));
            phase = PHASE_JUMPING;
        } else {
            let kept = filter::filter(ctx, &vertex_frontier, &Jump { labels: &labels });
            ctx.recycle(std::mem::replace(&mut vertex_frontier, kept));
            if vertex_frontier.is_empty() {
                phase = PHASE_HOOKING;
            }
        }
    }

    // both loop frontiers still own pooled storage; return them so a
    // re-run on this context starts with a warm pool
    ctx.recycle(edge_frontier);
    ctx.recycle(vertex_frontier);
    // a panic that emptied the frontier must not read as convergence
    if ctx.is_poisoned() {
        outcome = RunOutcome::Failed;
    }
    let labels = unwrap_atomic_u32(&labels);
    let num_components = labels.par_iter().enumerate().filter(|&(v, &l)| v as u32 == l).count();
    CcResult { labels, num_components, iterations, elapsed: start.elapsed(), outcome }
}

/// Edge throughput for CC is conventionally |E| / time (every edge is
/// inspected at least once).
pub fn cc_mteps(g: &Csr, elapsed: std::time::Duration) -> f64 {
    Timing { elapsed, edges_examined: g.num_edges() as u64 }.mteps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, hub_chain, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    fn check(g: &Csr) {
        let ctx = Context::new(g);
        let r = cc(&ctx);
        let want = serial::connected_components(g);
        assert_eq!(r.labels, want);
        assert_eq!(r.num_components, serial::num_components(&want));
    }

    #[test]
    fn matches_union_find_on_suite() {
        check(&GraphBuilder::new().build(erdos_renyi(400, 450, 1)));
        check(&GraphBuilder::new().build(rmat(8, 4, Default::default(), 2)));
        check(&GraphBuilder::new().build(grid2d(15, 15, 0.3, 0.0, 3)));
        check(&GraphBuilder::new().build(hub_chain(300, 0.05, 20, 4)));
    }

    #[test]
    fn fully_disconnected_graph() {
        let g = GraphBuilder::new().build(Coo::new(10));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 10);
        assert_eq!(r.labels, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn single_component_path() {
        let g = GraphBuilder::new()
            .build(Coo::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 1);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn iteration_cap_yields_a_refinement_of_true_components() {
        let g = GraphBuilder::new().build(grid2d(20, 20, 0.0, 0.0, 9));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = cc(&ctx);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 1);
        // partial labels refine the final labeling: equal partial label
        // implies equal final component
        let want = serial::connected_components(&g);
        for v in 0..g.num_vertices() {
            assert_eq!(
                want[r.labels[v] as usize], want[v],
                "vertex {v} hooked across a component boundary"
            );
        }
        // root count bounds the true component count from above
        assert!(r.num_components >= serial::num_components(&want));
    }

    #[test]
    fn cancelled_cc_returns_identity_labels() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = GraphBuilder::new().build(erdos_renyi(200, 400, 10));
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let r = cc(&ctx);
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.labels, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn two_stars() {
        let mut edges = vec![];
        for i in 1..50u32 {
            edges.push((0, i));
        }
        for i in 51..100u32 {
            edges.push((50, i));
        }
        let g = GraphBuilder::new().build(Coo::from_edges(100, &edges));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 2);
        assert!(r.labels[..50].iter().all(|&l| l == 0));
        assert!(r.labels[50..].iter().all(|&l| l == 50));
    }
}
