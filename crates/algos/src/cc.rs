//! Connected component labeling (§5.4), after Soman et al.
//!
//! "Gunrock uses a filter operator on an edge frontier to implement
//! hooking. The frontier starts with all edges and during each
//! iteration, one end vertex of each edge in the frontier tries to
//! assign its component ID to the other vertex, and the filter step
//! removes the edge whose two end vertices have the same component ID.
//! [...] then proceed[s] to pointer-jumping, where a filter operator on
//! vertices assigns the component ID of each vertex to its parent's
//! component ID until it reaches the root."
//!
//! This is the one primitive whose frontier is *edges* throughout —
//! exercising the edge-frontier side of the data-centric abstraction.

use gunrock::prelude::*;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// CC output.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Component label per vertex: the minimum vertex id in its component
    /// (canonical labeling).
    pub labels: Vec<VertexId>,
    /// Number of connected components (isolated vertices count).
    pub num_components: usize,
    /// Hooking + pointer-jumping iterations executed.
    pub iterations: u32,
    /// Wall time of the enact loop.
    pub elapsed: std::time::Duration,
    /// How the enact loop ended. On a partial outcome `labels` is a
    /// valid *refinement* of the final components (vertices with equal
    /// labels really are connected; some components may still be split
    /// across several labels) and `num_components` counts the current
    /// label roots, an upper bound on the true component count.
    pub outcome: RunOutcome,
}

/// Hooking functor over the edge frontier: hooks the larger-labeled
/// root under the smaller label; an edge stays in the frontier while its
/// endpoints' components differ.
struct Hook<'a> {
    edge_src: &'a [u32],
    edge_dst: &'a [u32],
    labels: &'a [AtomicU32],
    changed: &'a AtomicBool,
}

impl FilterFunctor for Hook<'_> {
    #[inline]
    fn cond(&self, e: u32) -> bool {
        let u = self.edge_src[e as usize] as usize;
        let v = self.edge_dst[e as usize] as usize;
        let lu = self.labels[u].load(Ordering::Relaxed);
        let lv = self.labels[v].load(Ordering::Relaxed);
        if lu == lv {
            return false; // converged edge: filtered out
        }
        let (hi, lo) = if lu > lv { (lu, lv) } else { (lv, lu) };
        if self.labels[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
            self.changed.store(true, Ordering::Relaxed);
        }
        true // endpoints still differ: keep the edge for the next pass
    }
}

/// Pointer-jumping functor over the vertex frontier: `label[v] =
/// label[label[v]]`; a vertex stays while its label is not a root.
struct Jump<'a> {
    labels: &'a [AtomicU32],
}

impl FilterFunctor for Jump<'_> {
    #[inline]
    fn cond(&self, v: u32) -> bool {
        let l = self.labels[v as usize].load(Ordering::Relaxed);
        let ll = self.labels[l as usize].load(Ordering::Relaxed);
        if ll < l {
            self.labels[v as usize].fetch_min(ll, Ordering::Relaxed);
            // keep v in the frontier: its new parent may not be a root yet
            true
        } else {
            false
        }
    }
}

/// Labels connected components. Works on the undirected interpretation
/// of the graph (each undirected edge may appear in either or both
/// directions; both work).
pub fn cc(ctx: &Context<'_>) -> CcResult {
    let g = ctx.graph;
    let n = g.num_vertices();
    let m = g.num_edges();
    let start = std::time::Instant::now();
    let labels = atomic_u32_vec(n, 0);
    labels.par_iter().enumerate().for_each(|(v, l)| l.store(v as u32, Ordering::Relaxed));
    // edge endpoint arrays for the edge frontier (edge id -> endpoints)
    let edge_dst: &[u32] = g.col_indices();
    let edge_src: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .flat_map_iter(|v| std::iter::repeat_n(v, g.out_degree(v) as usize))
        .collect();

    let mut edge_frontier = Frontier::full(m);
    let mut iterations = 0u32;
    let guard = ctx.guard();
    let mut outcome = RunOutcome::Converged;
    'enact: while !edge_frontier.is_empty() {
        if let Some(tripped) = guard.check(iterations) {
            outcome = tripped;
            break 'enact;
        }
        iterations += 1;
        ctx.end_iteration(false);
        // Hooking pass: filter on the edge frontier.
        let changed = AtomicBool::new(false);
        let hook = Hook { edge_src: &edge_src, edge_dst, labels: &labels, changed: &changed };
        edge_frontier = filter::filter(ctx, &edge_frontier, &hook);
        if !changed.load(Ordering::Relaxed) && !edge_frontier.is_empty() {
            // labels differ only through stale pointers: jumping will
            // reconcile them below
        }
        // Pointer jumping: filter on the vertex frontier until all labels
        // point at roots.
        let mut vertex_frontier = Frontier::full(n);
        while !vertex_frontier.is_empty() {
            if let Some(tripped) = guard.check(iterations) {
                outcome = tripped;
                break 'enact;
            }
            iterations += 1;
            ctx.end_iteration(false);
            vertex_frontier = filter::filter(ctx, &vertex_frontier, &Jump { labels: &labels });
        }
    }

    let labels = unwrap_atomic_u32(&labels);
    let num_components = labels.par_iter().enumerate().filter(|&(v, &l)| v as u32 == l).count();
    CcResult { labels, num_components, iterations, elapsed: start.elapsed(), outcome }
}

/// Edge throughput for CC is conventionally |E| / time (every edge is
/// inspected at least once).
pub fn cc_mteps(g: &Csr, elapsed: std::time::Duration) -> f64 {
    Timing { elapsed, edges_examined: g.num_edges() as u64 }.mteps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_baselines::serial;
    use gunrock_graph::generators::{erdos_renyi, grid2d, hub_chain, rmat};
    use gunrock_graph::{Coo, GraphBuilder};

    fn check(g: &Csr) {
        let ctx = Context::new(g);
        let r = cc(&ctx);
        let want = serial::connected_components(g);
        assert_eq!(r.labels, want);
        assert_eq!(r.num_components, serial::num_components(&want));
    }

    #[test]
    fn matches_union_find_on_suite() {
        check(&GraphBuilder::new().build(erdos_renyi(400, 450, 1)));
        check(&GraphBuilder::new().build(rmat(8, 4, Default::default(), 2)));
        check(&GraphBuilder::new().build(grid2d(15, 15, 0.3, 0.0, 3)));
        check(&GraphBuilder::new().build(hub_chain(300, 0.05, 20, 4)));
    }

    #[test]
    fn fully_disconnected_graph() {
        let g = GraphBuilder::new().build(Coo::new(10));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 10);
        assert_eq!(r.labels, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn single_component_path() {
        let g = GraphBuilder::new()
            .build(Coo::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 1);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn iteration_cap_yields_a_refinement_of_true_components() {
        let g = GraphBuilder::new().build(grid2d(20, 20, 0.0, 0.0, 9));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let r = cc(&ctx);
        assert_eq!(r.outcome, RunOutcome::IterationCapped);
        assert_eq!(r.iterations, 1);
        // partial labels refine the final labeling: equal partial label
        // implies equal final component
        let want = serial::connected_components(&g);
        for v in 0..g.num_vertices() {
            assert_eq!(
                want[r.labels[v] as usize], want[v],
                "vertex {v} hooked across a component boundary"
            );
        }
        // root count bounds the true component count from above
        assert!(r.num_components >= serial::num_components(&want));
    }

    #[test]
    fn cancelled_cc_returns_identity_labels() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = GraphBuilder::new().build(erdos_renyi(200, 400, 10));
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let r = cc(&ctx);
        assert_eq!(r.outcome, RunOutcome::Cancelled);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.labels, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn two_stars() {
        let mut edges = vec![];
        for i in 1..50u32 {
            edges.push((0, i));
        }
        for i in 51..100u32 {
            edges.push((50, i));
        }
        let g = GraphBuilder::new().build(Coo::from_edges(100, &edges));
        let ctx = Context::new(&g);
        let r = cc(&ctx);
        assert_eq!(r.num_components, 2);
        assert!(r.labels[..50].iter().all(|&l| l == 0));
        assert!(r.labels[50..].iter().all(|&l| l == 50));
    }
}
