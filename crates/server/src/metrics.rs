//! Serving metrics: lock-free counters rendered as a `gunrock-serve/v1`
//! JSON document.
//!
//! Every admission decision and completion bumps exactly one counter, so
//! `received == admitted + rejected.* ` and
//! `admitted == completed.* + in flight` hold at any quiescent point.
//! The `metrics` meta request and the drain summary both render through
//! [`ServeMetrics::render`], so clients and operators read the same
//! schema.

use gunrock_engine::breaker::BreakerEntry;
use gunrock_engine::json::JsonBuilder;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic serving counters. All methods take `&self`; the struct is
/// shared across connection handlers and workers behind an `Arc`.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Request lines received (including malformed ones).
    pub received: AtomicU64,
    /// Requests that entered the job queue.
    pub admitted: AtomicU64,
    /// Rejected: the bounded queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Rejected: deadline already spent at admission or dispatch.
    pub rejected_deadline: AtomicU64,
    /// Shed: the primitive's circuit breaker was open.
    pub rejected_breaker: AtomicU64,
    /// Rejected: the server was draining.
    pub rejected_shutdown: AtomicU64,
    /// Rejected: malformed line, unknown primitive, or bad field.
    pub rejected_bad_request: AtomicU64,
    /// Completed with a converged result.
    pub completed_ok: AtomicU64,
    /// Completed with a partial (guard-tripped) result.
    pub completed_partial: AtomicU64,
    /// Ran but failed (operator panic, resume failure, internal).
    pub failed: AtomicU64,
    /// Admitted requests whose wall-clock budget tripped mid-run.
    pub deadline_misses: AtomicU64,
    /// Resumable snapshots written on behalf of requests.
    pub checkpoints_written: AtomicU64,
}

/// Bumps one monotonic counter.
pub fn bump(counter: &AtomicU64) {
    // ORDERING: Relaxed — independent monotonic counters read only for
    // reporting; no other memory is published through them.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Reads one monotonic counter.
pub fn read(counter: &AtomicU64) -> u64 {
    // ORDERING: Relaxed — see `bump`; an in-flight increment may be
    // missed, which a metrics snapshot tolerates by design.
    counter.load(Ordering::Relaxed)
}

impl ServeMetrics {
    /// Renders the full metrics document. `queue_depth`/`queue_capacity`
    /// describe the bounded job queue at snapshot time; `workers` is the
    /// configured pool size; `breakers` is the circuit-breaker snapshot;
    /// `drained` marks the final summary printed on shutdown.
    pub fn render(
        &self,
        workers: usize,
        queue_depth: usize,
        queue_capacity: usize,
        breakers: &[BreakerEntry],
        drained: bool,
    ) -> String {
        let mut b = JsonBuilder::new();
        b.begin_object();
        b.field_str("schema", crate::protocol::SCHEMA);
        b.field_u64("workers", workers as u64);
        b.key("queue");
        b.begin_object();
        b.field_u64("depth", queue_depth as u64);
        b.field_u64("capacity", queue_capacity as u64);
        b.end_object();
        b.key("requests");
        b.begin_object();
        b.field_u64("received", read(&self.received));
        b.field_u64("admitted", read(&self.admitted));
        b.field_u64("completed_ok", read(&self.completed_ok));
        b.field_u64("completed_partial", read(&self.completed_partial));
        b.field_u64("failed", read(&self.failed));
        b.end_object();
        b.key("rejected");
        b.begin_object();
        b.field_u64("queue_full", read(&self.rejected_queue_full));
        b.field_u64("deadline_expired", read(&self.rejected_deadline));
        b.field_u64("circuit_open", read(&self.rejected_breaker));
        b.field_u64("shutting_down", read(&self.rejected_shutdown));
        b.field_u64("bad_request", read(&self.rejected_bad_request));
        b.end_object();
        b.field_u64("deadline_misses", read(&self.deadline_misses));
        b.field_u64("checkpoints_written", read(&self.checkpoints_written));
        b.key("breakers");
        b.begin_array();
        for entry in breakers {
            b.begin_object();
            b.field_str("primitive", &entry.key);
            b.field_str("state", entry.state.name());
            b.field_u64("consecutive_failures", u64::from(entry.consecutive_failures));
            b.end_object();
        }
        b.end_array();
        b.field_bool("drained", drained);
        b.end_object();
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_engine::json::JsonValue;

    #[test]
    fn render_round_trips_through_the_parser() {
        let m = ServeMetrics::default();
        bump(&m.received);
        bump(&m.received);
        bump(&m.admitted);
        bump(&m.rejected_queue_full);
        let doc = m.render(4, 1, 8, &[], false);
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some("gunrock-serve/v1"));
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("received").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(reqs.get("admitted").and_then(JsonValue::as_u64), Some(1));
        let rej = v.get("rejected").unwrap();
        assert_eq!(rej.get("queue_full").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("queue").unwrap().get("capacity").and_then(JsonValue::as_u64),
            Some(8)
        );
    }
}
