//! Serving metrics: lock-free counters rendered as a `gunrock-serve/v1`
//! JSON document.
//!
//! Every admission decision and completion bumps exactly one counter, so
//! `received == admitted + rejected.* ` and
//! `admitted == completed.* + in flight` hold at any quiescent point.
//! The `metrics` meta request and the drain summary both render through
//! [`ServeMetrics::render`], so clients and operators read the same
//! schema.

use gunrock_engine::breaker::BreakerEntry;
use gunrock_engine::json::JsonBuilder;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic serving counters. All methods take `&self`; the struct is
/// shared across connection handlers and workers behind an `Arc`.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Request lines received (including malformed ones).
    pub received: AtomicU64,
    /// Requests that entered the job queue.
    pub admitted: AtomicU64,
    /// Rejected: the bounded queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Rejected: deadline already spent at admission or dispatch.
    pub rejected_deadline: AtomicU64,
    /// Shed: the primitive's circuit breaker was open.
    pub rejected_breaker: AtomicU64,
    /// Rejected: the server was draining.
    pub rejected_shutdown: AtomicU64,
    /// Rejected: malformed line, unknown primitive, or bad field.
    pub rejected_bad_request: AtomicU64,
    /// Rejected: the request's estimated footprint does not fit the
    /// memory budget (permanently, or under current pressure).
    pub rejected_over_budget: AtomicU64,
    /// Completed with a converged result.
    pub completed_ok: AtomicU64,
    /// Completed with a partial (guard-tripped) result.
    pub completed_partial: AtomicU64,
    /// Ran but failed (operator panic, resume failure, internal).
    pub failed: AtomicU64,
    /// Admitted requests whose wall-clock budget tripped mid-run.
    pub deadline_misses: AtomicU64,
    /// Resumable snapshots written on behalf of requests.
    pub checkpoints_written: AtomicU64,
    /// Jobs reaped by the watchdog (stopped heartbeating, ignored the
    /// cooperative cancel, outlived the grace period).
    pub watchdog_kills: AtomicU64,
    /// Degradation-ladder rungs taken inside admitted jobs (pull→push,
    /// lb_batch→thread_mapped) under memory pressure.
    pub degraded: AtomicU64,
    /// Lane-packed batches dispatched to the worker pool.
    pub batches: AtomicU64,
    /// Point queries that rode a batch lane (each also counts in
    /// `admitted` and exactly one completion counter).
    pub batched_lanes: AtomicU64,
    /// Batches whose shared sweep failed (a poisoned lane) and were
    /// re-run as per-lane isolated jobs.
    pub batch_fallbacks: AtomicU64,
    /// Windows sealed because they filled to the lane cap.
    pub batch_flush_full: AtomicU64,
    /// Windows sealed because the batching window expired.
    pub batch_flush_window: AtomicU64,
    /// Half-filled windows flushed by the drain sequence.
    pub batch_flush_drain: AtomicU64,
}

/// Coalescing configuration rendered under `"batching"` when the server
/// runs with a window (`--batch-window-ms`).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchingSnapshot {
    /// The configured window in milliseconds.
    pub window_ms: u64,
    /// The configured lane cap per batch.
    pub lanes_cap: u64,
}

/// Memory-governance gauges rendered under `"memory"` when the server
/// runs with a budget (`--memory-budget`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemorySnapshot {
    /// The configured hard limit on outstanding pooled bytes.
    pub budget_limit: u64,
    /// Outstanding reserved bytes at snapshot time.
    pub budget_reserved: u64,
    /// Peak reserved bytes over the server's lifetime.
    pub peak_bytes: u64,
    /// Reservations denied by the budget.
    pub denials: u64,
    /// Bytes currently checked out of the shared buffer pool.
    pub pool_bytes_live: u64,
    /// Peak bytes checked out of the shared pool at once.
    pub pool_bytes_high_water: u64,
}

/// Which [`ServeMetrics`] counter a response carrying each wire error
/// code bumps. The taxonomy is closed: every `ErrorCode` wire spelling
/// appears here exactly once, and `cargo xtask audit` (taxonomy pass)
/// fails if this table and `protocol.rs` drift apart. The four
/// `"failed"` rows share one counter because they all describe a job
/// that ran and died (`watchdog-killed` additionally bumps
/// `watchdog_kills` at the kill site).
pub const CODE_COUNTERS: [(&str, &str); 12] = [
    ("bad-request", "rejected_bad_request"),
    ("unknown-primitive", "rejected_bad_request"),
    ("src-out-of-range", "rejected_bad_request"),
    ("queue-full", "rejected_queue_full"),
    ("deadline-expired", "rejected_deadline"),
    ("circuit-open", "rejected_breaker"),
    ("shutting-down", "rejected_shutdown"),
    ("over-budget", "rejected_over_budget"),
    ("watchdog-killed", "failed"),
    ("operator-panic", "failed"),
    ("resume-failed", "failed"),
    ("internal", "failed"),
];

/// Bumps one monotonic counter.
pub fn bump(counter: &AtomicU64) {
    // ORDERING: Relaxed — independent monotonic counters read only for
    // reporting; no other memory is published through them.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds `n` to one monotonic counter (per-job degrade totals).
pub fn bump_by(counter: &AtomicU64, n: u64) {
    // ORDERING: Relaxed — see `bump`.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Reads one monotonic counter.
pub fn read(counter: &AtomicU64) -> u64 {
    // ORDERING: Relaxed — see `bump`; an in-flight increment may be
    // missed, which a metrics snapshot tolerates by design.
    counter.load(Ordering::Relaxed)
}

impl ServeMetrics {
    /// Renders the full metrics document. `queue_depth`/`queue_capacity`
    /// describe the bounded job queue at snapshot time; `workers` is the
    /// configured pool size; `breakers` is the circuit-breaker snapshot;
    /// `drained` marks the final summary printed on shutdown.
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        workers: usize,
        queue_depth: usize,
        queue_capacity: usize,
        breakers: &[BreakerEntry],
        memory: Option<&MemorySnapshot>,
        batching: Option<&BatchingSnapshot>,
        drained: bool,
    ) -> String {
        let mut b = JsonBuilder::new();
        b.begin_object();
        b.field_str("schema", crate::protocol::SCHEMA);
        b.field_u64("workers", workers as u64);
        b.key("queue");
        b.begin_object();
        b.field_u64("depth", queue_depth as u64);
        b.field_u64("capacity", queue_capacity as u64);
        b.end_object();
        b.key("requests");
        b.begin_object();
        b.field_u64("received", read(&self.received));
        b.field_u64("admitted", read(&self.admitted));
        b.field_u64("completed_ok", read(&self.completed_ok));
        b.field_u64("completed_partial", read(&self.completed_partial));
        b.field_u64("failed", read(&self.failed));
        b.end_object();
        b.key("rejected");
        b.begin_object();
        b.field_u64("queue_full", read(&self.rejected_queue_full));
        b.field_u64("deadline_expired", read(&self.rejected_deadline));
        b.field_u64("circuit_open", read(&self.rejected_breaker));
        b.field_u64("shutting_down", read(&self.rejected_shutdown));
        b.field_u64("bad_request", read(&self.rejected_bad_request));
        b.field_u64("over_budget", read(&self.rejected_over_budget));
        b.end_object();
        b.field_u64("deadline_misses", read(&self.deadline_misses));
        b.field_u64("checkpoints_written", read(&self.checkpoints_written));
        b.field_u64("watchdog_kills", read(&self.watchdog_kills));
        b.field_u64("degraded", read(&self.degraded));
        if let Some(mem) = memory {
            b.key("memory");
            b.begin_object();
            b.field_u64("budget_limit", mem.budget_limit);
            b.field_u64("budget_reserved", mem.budget_reserved);
            b.field_u64("peak_bytes", mem.peak_bytes);
            b.field_u64("denials", mem.denials);
            b.field_u64("pool_bytes_live", mem.pool_bytes_live);
            b.field_u64("pool_bytes_high_water", mem.pool_bytes_high_water);
            b.end_object();
        }
        if let Some(batch) = batching {
            let batches = read(&self.batches);
            let lanes = read(&self.batched_lanes);
            b.key("batching");
            b.begin_object();
            b.field_u64("window_ms", batch.window_ms);
            b.field_u64("lanes_cap", batch.lanes_cap);
            b.field_u64("batches", batches);
            b.field_u64("lanes", lanes);
            // occupancy: mean lanes per dispatched batch — the
            // amortization factor actually achieved
            b.field_f64(
                "occupancy",
                if batches == 0 { 0.0 } else { lanes as f64 / batches as f64 },
            );
            // queue slots + admission charges the coalescer saved versus
            // serving every lane as a solo job
            b.field_u64("amortized_admissions", lanes.saturating_sub(batches));
            b.field_u64("fallbacks", read(&self.batch_fallbacks));
            b.key("flushed");
            b.begin_object();
            b.field_u64("full", read(&self.batch_flush_full));
            b.field_u64("window", read(&self.batch_flush_window));
            b.field_u64("drain", read(&self.batch_flush_drain));
            b.end_object();
            b.end_object();
        }
        b.key("breakers");
        b.begin_array();
        for entry in breakers {
            b.begin_object();
            b.field_str("primitive", &entry.key);
            b.field_str("state", entry.state.name());
            b.field_u64("consecutive_failures", u64::from(entry.consecutive_failures));
            b.end_object();
        }
        b.end_array();
        b.field_bool("drained", drained);
        b.end_object();
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_engine::json::JsonValue;

    #[test]
    fn render_round_trips_through_the_parser() {
        let m = ServeMetrics::default();
        bump(&m.received);
        bump(&m.received);
        bump(&m.admitted);
        bump(&m.rejected_queue_full);
        let doc = m.render(4, 1, 8, &[], None, None, false);
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some("gunrock-serve/v1"));
        let reqs = v.get("requests").unwrap();
        assert_eq!(reqs.get("received").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(reqs.get("admitted").and_then(JsonValue::as_u64), Some(1));
        let rej = v.get("rejected").unwrap();
        assert_eq!(rej.get("queue_full").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("queue").unwrap().get("capacity").and_then(JsonValue::as_u64),
            Some(8)
        );
        assert!(v.get("memory").is_none(), "no budget, no memory section");
        assert!(v.get("batching").is_none(), "no window, no batching section");
    }

    #[test]
    fn batching_section_reports_occupancy_and_amortization() {
        let m = ServeMetrics::default();
        bump_by(&m.batches, 2);
        bump_by(&m.batched_lanes, 96);
        bump(&m.batch_fallbacks);
        bump(&m.batch_flush_full);
        bump(&m.batch_flush_window);
        let snap = BatchingSnapshot { window_ms: 2, lanes_cap: 64 };
        let doc = m.render(4, 0, 8, &[], None, Some(&snap), false);
        let v = JsonValue::parse(&doc).unwrap();
        let batch = v.get("batching").expect("windowed server renders a batching section");
        assert_eq!(batch.get("window_ms").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(batch.get("lanes_cap").and_then(JsonValue::as_u64), Some(64));
        assert_eq!(batch.get("batches").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(batch.get("lanes").and_then(JsonValue::as_u64), Some(96));
        assert_eq!(batch.get("occupancy").and_then(JsonValue::as_f64), Some(48.0));
        assert_eq!(batch.get("amortized_admissions").and_then(JsonValue::as_u64), Some(94));
        assert_eq!(batch.get("fallbacks").and_then(JsonValue::as_u64), Some(1));
        let flushed = batch.get("flushed").unwrap();
        assert_eq!(flushed.get("full").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(flushed.get("window").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(flushed.get("drain").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn governance_counters_and_memory_section_render() {
        let m = ServeMetrics::default();
        bump(&m.rejected_over_budget);
        bump(&m.watchdog_kills);
        bump_by(&m.degraded, 3);
        let mem = MemorySnapshot {
            budget_limit: 1 << 20,
            budget_reserved: 4096,
            peak_bytes: 8192,
            denials: 2,
            pool_bytes_live: 4096,
            pool_bytes_high_water: 8192,
        };
        let doc = m.render(2, 0, 4, &[], Some(&mem), None, false);
        let v = JsonValue::parse(&doc).unwrap();
        let rej = v.get("rejected").unwrap();
        assert_eq!(rej.get("over_budget").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("watchdog_kills").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("degraded").and_then(JsonValue::as_u64), Some(3));
        let mem = v.get("memory").expect("budgeted server renders a memory section");
        assert_eq!(mem.get("budget_limit").and_then(JsonValue::as_u64), Some(1 << 20));
        assert_eq!(mem.get("peak_bytes").and_then(JsonValue::as_u64), Some(8192));
        assert_eq!(mem.get("denials").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn code_counters_cover_the_whole_taxonomy_bijectively() {
        use crate::protocol::ErrorCode;
        assert_eq!(CODE_COUNTERS.len(), ErrorCode::ALL.len());
        for code in ErrorCode::ALL {
            let rows = CODE_COUNTERS.iter().filter(|(wire, _)| *wire == code.as_str()).count();
            assert_eq!(rows, 1, "{} must appear exactly once", code.as_str());
        }
        // every target is a real ServeMetrics counter
        let m = ServeMetrics::default();
        for (_, counter) in CODE_COUNTERS {
            let field = match counter {
                "rejected_bad_request" => &m.rejected_bad_request,
                "rejected_queue_full" => &m.rejected_queue_full,
                "rejected_deadline" => &m.rejected_deadline,
                "rejected_breaker" => &m.rejected_breaker,
                "rejected_shutdown" => &m.rejected_shutdown,
                "rejected_over_budget" => &m.rejected_over_budget,
                "failed" => &m.failed,
                other => panic!("CODE_COUNTERS names unknown counter {other}"),
            };
            bump(field);
        }
    }
}
