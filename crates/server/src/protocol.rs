//! The `gunrock-serve/v1` wire protocol: line-delimited JSON.
//!
//! One request per line, one response line per request, over TCP or
//! stdin — no HTTP machinery, so the whole protocol fits the hand-rolled
//! [`gunrock_engine::json`] layer. A request names a primitive and its
//! parameters; a response reports either a result summary or a
//! *structured* rejection/failure from the error taxonomy below. Clients
//! never get a silent drop: overload, expiry, breaker shedding and drain
//! all answer with a machine-readable `error.code` (and `retry_after_ms`
//! when retrying is sensible).
//!
//! Request fields (`id` and `primitive` are the only strings; all else
//! is optional):
//!
//! ```text
//! {"id":"r1","primitive":"bfs","src":0,"deadline_ms":5000,
//!  "max_iters":100,"checkpoint":true,"checkpoint_every":0,
//!  "resume":"/path/to/bfs.ckpt","epsilon":1e-10,
//!  "duration_ms":250,"inject":"panic=1.0","fault_seed":7}
//! ```
//!
//! `primitive` is one of `bfs`/`sssp`/`bc`/`cc`/`pagerank`, the
//! diagnostic `sleep` (busy-waits `duration_ms`, honoring deadline and
//! drain — used to exercise queueing deterministically), or the meta
//! request `metrics` (answered inline, never queued).

use gunrock_engine::json::JsonValue;

/// Schema tag stamped on every response and metrics document.
pub const SCHEMA: &str = "gunrock-serve/v1";

/// Primitives a request may name (the meta request `metrics` is handled
/// before admission and is deliberately not listed).
pub const SERVE_PRIMITIVES: [&str; 6] = ["bfs", "sssp", "bc", "cc", "pagerank", "sleep"];

/// Machine-readable rejection/failure codes — the protocol's complete
/// error taxonomy. Everything a client can observe going wrong maps to
/// exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON or missing required fields.
    BadRequest,
    /// The named primitive is not served.
    UnknownPrimitive,
    /// The source vertex is outside the loaded graph.
    SrcOutOfRange,
    /// The bounded job queue is full — back off and retry.
    QueueFull,
    /// The deadline budget was already spent (at admission or before
    /// dispatch); running the query could only waste worker time.
    DeadlineExpired,
    /// The primitive's circuit breaker is open after repeated failures;
    /// the request was shed without running.
    CircuitOpen,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// The request's estimated memory footprint does not fit the
    /// server's memory budget. With `retry_after_ms` the pressure is
    /// transient (other jobs hold the headroom — retry later); without
    /// it the graph is simply too large for the configured budget and
    /// retrying cannot help.
    OverBudget,
    /// The watchdog killed this request: its job stopped heartbeating
    /// and ignored cooperative cancellation. The worker slot is
    /// reclaimed; the failure feeds the primitive's circuit breaker.
    WatchdogKilled,
    /// An operator panicked inside this request; only this request
    /// failed (the worker and server keep serving).
    OperatorPanic,
    /// The `resume` snapshot could not be loaded or replayed.
    ResumeFailed,
    /// An unexpected server-side fault (a bug, not an overload signal).
    Internal,
}

impl ErrorCode {
    /// Every code, in taxonomy order. Exists so downstream exhaustiveness
    /// checks (`metrics::CODE_COUNTERS`, the `cargo xtask audit` taxonomy
    /// pass) can iterate the closed set without a match statement.
    pub const ALL: [ErrorCode; 12] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownPrimitive,
        ErrorCode::SrcOutOfRange,
        ErrorCode::QueueFull,
        ErrorCode::DeadlineExpired,
        ErrorCode::CircuitOpen,
        ErrorCode::ShuttingDown,
        ErrorCode::OverBudget,
        ErrorCode::WatchdogKilled,
        ErrorCode::OperatorPanic,
        ErrorCode::ResumeFailed,
        ErrorCode::Internal,
    ];

    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownPrimitive => "unknown-primitive",
            ErrorCode::SrcOutOfRange => "src-out-of-range",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::DeadlineExpired => "deadline-expired",
            ErrorCode::CircuitOpen => "circuit-open",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::OverBudget => "over-budget",
            ErrorCode::WatchdogKilled => "watchdog-killed",
            ErrorCode::OperatorPanic => "operator-panic",
            ErrorCode::ResumeFailed => "resume-failed",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim (may be empty).
    pub id: String,
    /// The primitive to run (or `metrics`).
    pub primitive: String,
    /// Source vertex for bfs/sssp/bc.
    pub src: u32,
    /// Wall-clock budget in milliseconds, counted from arrival.
    pub deadline_ms: Option<u64>,
    /// Bulk-synchronous iteration cap.
    pub max_iters: Option<u32>,
    /// Sleep duration for the `sleep` diagnostic primitive.
    pub duration_ms: u64,
    /// Snapshot state so a guard trip (or drain) leaves a resumable file.
    pub checkpoint: bool,
    /// Snapshot cadence in iterations (0: only when a guard trips).
    pub checkpoint_every: u32,
    /// Path of a `gunrock-ckpt/v1` snapshot to resume instead of
    /// starting fresh.
    pub resume: Option<String>,
    /// PageRank convergence threshold override.
    pub epsilon: Option<f64>,
    /// Per-request fault-injection spec
    /// (`panic=RATE,alloc=RATE,pool-alloc=RATE,io=RATE,stall=RATE`),
    /// overriding any server-wide plan.
    pub inject: Option<String>,
    /// Seed for the per-request fault schedule.
    pub fault_seed: u64,
}

fn get_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key:?} must be a boolean")),
    }
}

fn get_str(v: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{key:?} must be a string")),
    }
}

/// Parses one request line. Errors are client errors (`bad-request`).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let primitive = get_str(&v, "primitive")?.ok_or("missing \"primitive\"")?;
    let src_raw = get_u64(&v, "src")?.unwrap_or(0);
    let src = u32::try_from(src_raw).map_err(|_| "\"src\" does not fit u32".to_string())?;
    let max_iters = match get_u64(&v, "max_iters")? {
        None => None,
        Some(n) => {
            Some(u32::try_from(n).map_err(|_| "\"max_iters\" does not fit u32".to_string())?)
        }
    };
    let checkpoint_every = match get_u64(&v, "checkpoint_every")? {
        None => 0,
        Some(n) => {
            u32::try_from(n).map_err(|_| "\"checkpoint_every\" does not fit u32".to_string())?
        }
    };
    let epsilon = match v.get("epsilon") {
        None | Some(JsonValue::Null) => None,
        Some(field) => {
            Some(field.as_f64().ok_or_else(|| "\"epsilon\" must be a number".to_string())?)
        }
    };
    Ok(Request {
        id: get_str(&v, "id")?.unwrap_or_default(),
        primitive,
        src,
        deadline_ms: get_u64(&v, "deadline_ms")?,
        max_iters,
        duration_ms: get_u64(&v, "duration_ms")?.unwrap_or(0),
        checkpoint: get_bool(&v, "checkpoint")?,
        checkpoint_every,
        resume: get_str(&v, "resume")?,
        epsilon,
        inject: get_str(&v, "inject")?,
        fault_seed: get_u64(&v, "fault_seed")?.unwrap_or(42),
    })
}

/// Renders a structured rejection/failure response.
pub fn error_response(
    id: &str,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut b = gunrock_engine::json::JsonBuilder::new();
    b.begin_object();
    b.field_str("schema", SCHEMA);
    b.field_str("id", id);
    let status = match code {
        ErrorCode::OperatorPanic
        | ErrorCode::ResumeFailed
        | ErrorCode::WatchdogKilled
        | ErrorCode::Internal => "failed",
        _ => "rejected",
    };
    b.field_str("status", status);
    b.key("error");
    b.begin_object();
    b.field_str("code", code.as_str());
    b.field_str("message", message);
    b.end_object();
    if let Some(ms) = retry_after_ms {
        b.field_u64("retry_after_ms", ms);
    }
    b.end_object();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"q7","primitive":"bfs","src":3,"deadline_ms":500,"max_iters":9,
                "checkpoint":true,"inject":"panic=1.0","fault_seed":11}"#,
        )
        .unwrap();
        assert_eq!(r.id, "q7");
        assert_eq!(r.primitive, "bfs");
        assert_eq!(r.src, 3);
        assert_eq!(r.deadline_ms, Some(500));
        assert_eq!(r.max_iters, Some(9));
        assert!(r.checkpoint);
        assert_eq!(r.inject.as_deref(), Some("panic=1.0"));
        assert_eq!(r.fault_seed, 11);
    }

    #[test]
    fn defaults_are_permissive() {
        let r = parse_request(r#"{"primitive":"cc"}"#).unwrap();
        assert_eq!(r.id, "");
        assert_eq!(r.src, 0);
        assert_eq!(r.deadline_ms, None);
        assert!(!r.checkpoint);
        assert_eq!(r.fault_seed, 42);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"src":1}"#).unwrap_err().contains("primitive"));
        assert!(parse_request(r#"{"primitive":"bfs","src":-1}"#).is_err());
        assert!(parse_request(r#"{"primitive":"bfs","checkpoint":"yes"}"#).is_err());
    }

    #[test]
    fn error_responses_carry_the_taxonomy() {
        let resp = error_response("x", ErrorCode::QueueFull, "queue is full", Some(100));
        let v = JsonValue::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("rejected"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str),
            Some("queue-full")
        );
        assert_eq!(v.get("retry_after_ms").and_then(JsonValue::as_u64), Some(100));
        let failed = error_response("x", ErrorCode::OperatorPanic, "boom", None);
        let v = JsonValue::parse(&failed).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("failed"));
    }

    #[test]
    fn governance_codes_have_the_right_status() {
        let resp = error_response("x", ErrorCode::OverBudget, "estimated 1 GiB", Some(150));
        let v = JsonValue::parse(&resp).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("rejected"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str),
            Some("over-budget")
        );
        assert_eq!(v.get("retry_after_ms").and_then(JsonValue::as_u64), Some(150));
        let killed = error_response("x", ErrorCode::WatchdogKilled, "job stalled", None);
        let v = JsonValue::parse(&killed).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("failed"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(JsonValue::as_str),
            Some("watchdog-killed")
        );
    }
}
