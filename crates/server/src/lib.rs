//! `gunrock-server`: a long-lived query service over one shared,
//! immutable in-memory graph.
//!
//! The batch CLI pays graph construction on every invocation; this crate
//! loads (or generates) the graph once behind an `Arc<Csr>` and serves
//! BFS/SSSP/PageRank/CC/BC queries over a line-delimited JSON protocol —
//! TCP or stdin, no HTTP dependency. The robustness machinery grown by
//! earlier layers composes into the serving path:
//!
//! * **bounded admission** — a [`gunrock_engine::queue::BoundedQueue`]
//!   in front of a fixed worker pool; overflow is answered with a
//!   structured `queue-full` rejection and a retry hint, never buffered
//!   or dropped;
//! * **admission control** — per-request deadlines and iteration budgets
//!   become the [`gunrock::prelude::RunPolicy`] of that request's
//!   context; already-expired deadlines are rejected up front and
//!   re-checked at dispatch;
//! * **panic isolation** — operator panics poison only the failing
//!   request's context (`operator-panic` response); workers survive;
//! * **circuit breaking** — a
//!   [`gunrock_engine::breaker::CircuitBreaker`] per primitive sheds
//!   load after repeated panics and recovers through a half-open probe;
//! * **graceful drain** — SIGTERM/SIGINT stops admission, cancels
//!   in-flight work at the next operator boundary (leaving resumable
//!   `gunrock-ckpt/v1` snapshots when requested), joins the pool, and
//!   prints a final `gunrock-serve/v1` metrics summary.
//!
//! See `DESIGN.md` (service layer) for the protocol schema and the
//! complete error taxonomy, and `tests/tests/server_resilience.rs` for
//! the end-to-end overload/panic/breaker/drain scenarios.

#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod coalesce;
pub mod jobs;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod signal;

pub use client::{query_once, Client};
pub use protocol::{ErrorCode, Request, SCHEMA, SERVE_PRIMITIVES};
pub use server::{handle_request, serve_stdin, start, ServerConfig, ServerHandle, ServerState};
