//! Front-end argument handling for the `gunrock-serve` binary and the
//! `gunrock serve` / `gunrock query` subcommands — both delegate here so
//! the two entry points cannot drift apart.

use crate::client;
use crate::protocol::SCHEMA;
use crate::server::{serve_stdin, start, ServerConfig};
use crate::signal;
use gunrock_engine::faults::FaultPlan;
use gunrock_engine::json::{JsonBuilder, JsonValue};
use gunrock_graph::{generators, io as graph_io, Csr, GraphBuilder};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Usage text for `gunrock-serve` / `gunrock serve`.
pub const SERVE_USAGE: &str = "\
usage: gunrock-serve [--port N | --stdin] [graph flags] [options]

graph flags:
  --graph FILE          load a graph (.bin, .mtx, or edge list)
  --gen KIND            generate: kron soc roadnet bitcoin random smallworld
  --scale N             generator size exponent (default: 12)
  --seed N              generator seed (default: 42)
  --weights LO..HI      random edge weights (default: 1..64, for sssp)
  --reorder             serve the degree-descending relabeled graph;
                        requests still name original vertex ids and
                        result hashes are computed on restored results

options:
  --port N              listen on 127.0.0.1:N (0: pick a free port; default 0)
  --stdin               serve line-delimited requests on stdin instead of TCP
  --workers N           worker-pool size (default: 4)
  --queue-cap N         bounded job-queue capacity (default: 16)
  --breaker-threshold N consecutive panics that open a breaker (default: 3)
  --breaker-cooldown-ms N  open-breaker shed window (default: 1000)
  --retry-after-ms N    retry hint on queue-full rejections (default: 100)
  --checkpoint-dir D    root for per-request snapshots (default: .)
  --serial-threshold N  small-frontier serial fast-path cutoff
  --memory-budget B     cap outstanding pooled bytes across all workers
                        (suffix k/m/g for KiB/MiB/GiB; 0: unlimited, the
                        default); requests whose estimated footprint
                        cannot fit are rejected with over-budget
  --watchdog-ms N       reap jobs silent for N ms (cancel at N, kill at
                        1.5N; 0: disabled, the default)
  --batch-window-ms N   coalesce compatible point BFS queries arriving
                        within N ms into one lane-packed multi-source
                        job (0: disabled, the default)
  --batch-lanes N       lane cap per coalesced batch (default: 64,
                        clamped to 1..=64)
  --inject-faults SPEC  server-wide seeded faults:
                        panic=RATE,alloc=RATE,pool-alloc=RATE,io=RATE,stall=RATE
  --fault-seed N        seed for the fault schedule (default: 42)

The server answers line-delimited JSON requests (see DESIGN.md §service
layer) and drains gracefully on SIGTERM/SIGINT, printing a final
gunrock-serve/v1 summary. Exit code 0 after a clean drain, 1 on setup
errors.";

/// Usage text for `gunrock query`.
pub const QUERY_USAGE: &str = "\
usage: gunrock query --addr HOST:PORT [--request JSON | request flags]

request flags (assembled into one request line):
  --primitive P         bfs sssp bc cc pagerank sleep metrics (default: bfs)
  --id ID               correlation id echoed in the response
  --src N               source vertex (default: 0)
  --deadline-ms N       wall-clock budget, counted from arrival
  --max-iters N         iteration cap
  --duration-ms N       sleep primitive duration
  --epsilon X           pagerank convergence threshold
  --checkpoint          ask for a resumable snapshot on a guard trip
  --resume PATH         resume a gunrock-ckpt/v1 snapshot
  --inject SPEC         per-request faults: panic=RATE,alloc=RATE,pool-alloc=RATE,io=RATE,stall=RATE
  --fault-seed N        per-request fault seed
  --timeout-ms N        client receive timeout (default: 30000)

Prints the response line. Exit code 0 when status is \"ok\", 2 for a
partial result, 1 for rejections, failures, and transport errors.";

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 3] = ["stdin", "checkpoint", "reorder"];

fn parse_flags(raw: Vec<String>) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Err("help".to_string()),
            flag if flag.starts_with("--") => {
                let key = flag.trim_start_matches("--").to_string();
                if BOOLEAN_FLAGS.contains(&key.as_str()) {
                    flags.insert(key, "true".to_string());
                } else {
                    let value =
                        it.next().ok_or_else(|| format!("flag {flag} requires a value"))?;
                    flags.insert(key, value);
                }
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(flags)
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}")),
        None => Ok(default),
    }
}

/// Byte-count parsing with `k`/`m`/`g` suffixes, shared with the CLI.
pub use gunrock_engine::budget::parse_bytes;

/// Builds the served graph from `--graph` or the generator flags.
fn build_graph(flags: &HashMap<String, String>) -> Result<Csr, String> {
    if let Some(path) = flags.get("graph") {
        return graph_io::load_graph(std::path::Path::new(path))
            .map_err(|e| format!("cannot load {path}: {e}"));
    }
    let scale = get_u64(flags, "scale", 12)? as u32;
    let seed = get_u64(flags, "seed", 42)?;
    let kind = flags.get("gen").map(String::as_str).unwrap_or("kron");
    // The service runs sssp too, so served graphs always carry weights.
    let (lo, hi) = match flags.get("weights") {
        None => (1, 64),
        Some(spec) => {
            let (lo, hi) = spec
                .split_once("..")
                .ok_or_else(|| format!("--weights expects LO..HI, got {spec:?}"))?;
            let lo: u32 = lo.parse().map_err(|_| format!("bad weight {lo:?}"))?;
            let hi: u32 = hi.parse().map_err(|_| format!("bad weight {hi:?}"))?;
            if lo > hi || lo == 0 {
                return Err(format!("--weights needs 1 <= LO <= HI, got {spec:?}"));
            }
            (lo, hi)
        }
    };
    let coo = generators::from_spec(kind, scale, seed)?;
    Ok(GraphBuilder::new().random_weights(lo, hi, seed).build(coo))
}

fn build_config(flags: &HashMap<String, String>) -> Result<ServerConfig, String> {
    let fault_plan = match flags.get("inject-faults") {
        None => None,
        Some(spec) => Some(
            FaultPlan::parse(spec, get_u64(flags, "fault-seed", 42)?)
                .map_err(|e| format!("--inject-faults: {e}"))?,
        ),
    };
    Ok(ServerConfig {
        workers: get_u64(flags, "workers", 4)? as usize,
        queue_capacity: get_u64(flags, "queue-cap", 16)? as usize,
        breaker_threshold: get_u64(flags, "breaker-threshold", 3)? as u32,
        breaker_cooldown: Duration::from_millis(get_u64(flags, "breaker-cooldown-ms", 1000)?),
        retry_after: Duration::from_millis(get_u64(flags, "retry-after-ms", 100)?),
        checkpoint_dir: PathBuf::from(
            flags.get("checkpoint-dir").map(String::as_str).unwrap_or("."),
        ),
        fault_plan,
        serial_threshold: flags
            .get("serial-threshold")
            .map(|v| v.parse().map_err(|_| format!("--serial-threshold: bad number {v:?}")))
            .transpose()?,
        // filled by run_serve once the graph exists
        relabeling: None,
        memory_budget: flags
            .get("memory-budget")
            .map(|v| parse_bytes(v).map_err(|e| format!("--memory-budget: {e}")))
            .transpose()?
            .unwrap_or(0),
        watchdog_interval: match get_u64(flags, "watchdog-ms", 0)? {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        batch_window: Duration::from_millis(get_u64(flags, "batch-window-ms", 0)?),
        batch_lanes: get_u64(flags, "batch-lanes", 64)? as usize,
    })
}

/// `gunrock-serve` / `gunrock serve`: boots the service, blocks until
/// drain, prints the summary. Returns the process exit code.
pub fn run_serve(raw: Vec<String>) -> i32 {
    let flags = match parse_flags(raw) {
        Ok(f) => f,
        Err(e) if e == "help" => {
            println!("{SERVE_USAGE}");
            return 0;
        }
        Err(e) => {
            eprintln!("{e}\n\n{SERVE_USAGE}");
            return 1;
        }
    };
    let mut graph = match build_graph(&flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    // --reorder: serve the hub-clustered graph; jobs translate request
    // sources in and restore per-vertex results before hashing
    let relabeling = flags.contains_key("reorder").then(|| {
        let r = gunrock_graph::reorder::degree_descending(&graph);
        graph = r.apply(&graph);
        Arc::new(r)
    });
    let graph = Arc::new(graph);
    let mut cfg = match build_config(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{SERVE_USAGE}");
            return 1;
        }
    };
    cfg.relabeling = relabeling;
    eprintln!(
        "gunrock-serve: {} vertices, {} edges, {} workers, queue capacity {}",
        graph.num_vertices(),
        graph.num_edges(),
        cfg.workers.max(1),
        cfg.queue_capacity.max(1)
    );
    signal::install();
    let summary = if flags.contains_key("stdin") {
        serve_stdin(graph, cfg)
    } else {
        let port = get_u64(&flags, "port", 0).ok().and_then(|p| u16::try_from(p).ok());
        let Some(port) = port else {
            eprintln!("--port expects a TCP port number");
            return 1;
        };
        let handle = match start(graph, cfg, port) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        println!("listening on {}", handle.addr());
        let _ = std::io::stdout().flush();
        handle.join()
    };
    println!("{summary}");
    0
}

/// Assembles a request line from `gunrock query` flags.
fn build_request_line(flags: &HashMap<String, String>) -> Result<String, String> {
    if let Some(raw) = flags.get("request") {
        return Ok(raw.clone());
    }
    let mut b = JsonBuilder::new();
    b.begin_object();
    b.field_str("primitive", flags.get("primitive").map(String::as_str).unwrap_or("bfs"));
    if let Some(id) = flags.get("id") {
        b.field_str("id", id);
    }
    for key in ["src", "deadline_ms", "max_iters", "duration_ms", "fault_seed"] {
        let flag = key.replace('_', "-");
        if let Some(v) = flags.get(&flag) {
            let n: u64 =
                v.parse().map_err(|_| format!("--{flag} expects a number, got {v:?}"))?;
            b.field_u64(key, n);
        }
    }
    if let Some(v) = flags.get("epsilon") {
        let eps: f64 =
            v.parse().map_err(|_| format!("--epsilon expects a number, got {v:?}"))?;
        b.field_f64("epsilon", eps);
    }
    if flags.contains_key("checkpoint") {
        b.field_bool("checkpoint", true);
    }
    if let Some(path) = flags.get("resume") {
        b.field_str("resume", path);
    }
    if let Some(spec) = flags.get("inject") {
        b.field_str("inject", spec);
    }
    b.end_object();
    Ok(b.finish())
}

/// `gunrock query`: sends one request and prints the response line.
/// Returns the process exit code (0 ok, 2 partial, 1 otherwise).
pub fn run_query(raw: Vec<String>) -> i32 {
    let flags = match parse_flags(raw) {
        Ok(f) => f,
        Err(e) if e == "help" => {
            println!("{QUERY_USAGE}");
            return 0;
        }
        Err(e) => {
            eprintln!("{e}\n\n{QUERY_USAGE}");
            return 1;
        }
    };
    let Some(addr) = flags.get("addr") else {
        eprintln!("--addr HOST:PORT is required\n\n{QUERY_USAGE}");
        return 1;
    };
    let line = match build_request_line(&flags) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}\n\n{QUERY_USAGE}");
            return 1;
        }
    };
    let timeout = match get_u64(&flags, "timeout-ms", 30_000) {
        Ok(ms) => Duration::from_millis(ms),
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    match client::query_once(addr, &line, timeout) {
        Ok(response) => {
            println!("{response}");
            match JsonValue::parse(&response)
                .ok()
                .as_ref()
                .and_then(|v| v.get("status"))
                .and_then(JsonValue::as_str)
            {
                Some("ok") => 0,
                // the metrics meta request has no status field but is a
                // successful exchange
                None if response.contains(SCHEMA) => 0,
                Some("partial") => 2,
                _ => 1,
            }
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(v: &[&str]) -> HashMap<String, String> {
        parse_flags(v.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    #[test]
    fn boolean_and_valued_flags_parse() {
        let f = flags(&["--stdin", "--workers", "2", "--checkpoint"]);
        assert_eq!(f.get("stdin").map(String::as_str), Some("true"));
        assert_eq!(f.get("workers").map(String::as_str), Some("2"));
        assert!(f.contains_key("checkpoint"));
        assert!(parse_flags(vec!["--workers".to_string()]).is_err());
    }

    #[test]
    fn request_lines_assemble_and_pass_through() {
        let f = flags(&["--primitive", "sssp", "--src", "4", "--deadline-ms", "250"]);
        let line = build_request_line(&f).unwrap();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("primitive").and_then(JsonValue::as_str), Some("sssp"));
        assert_eq!(v.get("src").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("deadline_ms").and_then(JsonValue::as_u64), Some(250));
        let raw = flags(&["--request", r#"{"primitive":"cc"}"#]);
        assert_eq!(build_request_line(&raw).unwrap(), r#"{"primitive":"cc"}"#);
    }

    #[test]
    fn server_config_reads_every_knob() {
        let f = flags(&[
            "--workers",
            "2",
            "--queue-cap",
            "4",
            "--breaker-threshold",
            "5",
            "--breaker-cooldown-ms",
            "300",
            "--retry-after-ms",
            "50",
            "--checkpoint-dir",
            "/tmp/x",
            "--serial-threshold",
            "9",
            "--memory-budget",
            "64m",
            "--watchdog-ms",
            "250",
            "--batch-window-ms",
            "2",
            "--batch-lanes",
            "32",
        ]);
        let cfg = build_config(&f).unwrap();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_capacity, 4);
        assert_eq!(cfg.breaker_threshold, 5);
        assert_eq!(cfg.breaker_cooldown, Duration::from_millis(300));
        assert_eq!(cfg.retry_after, Duration::from_millis(50));
        assert_eq!(cfg.checkpoint_dir, PathBuf::from("/tmp/x"));
        assert_eq!(cfg.serial_threshold, Some(9));
        assert_eq!(cfg.memory_budget, 64 << 20);
        assert_eq!(cfg.watchdog_interval, Some(Duration::from_millis(250)));
        assert_eq!(cfg.batch_window, Duration::from_millis(2));
        assert_eq!(cfg.batch_lanes, 32);
        // governance defaults: unlimited, no watchdog, no coalescing
        let plain = build_config(&flags(&[])).unwrap();
        assert_eq!(plain.memory_budget, 0);
        assert_eq!(plain.watchdog_interval, None);
        assert_eq!(plain.batch_window, Duration::ZERO);
        assert_eq!(plain.batch_lanes, 64);
    }

    #[test]
    fn byte_counts_parse_with_binary_suffixes() {
        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("512M").unwrap(), 512 << 20);
        assert_eq!(parse_bytes("2g").unwrap(), 2 << 30);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("999999999999g").is_err(), "overflow is an error, not a wrap");
    }

    #[test]
    fn graph_flags_build_a_served_graph() {
        let g = build_graph(&flags(&["--gen", "random", "--scale", "6"])).unwrap();
        assert_eq!(g.num_vertices(), 64);
        assert!(g.edge_values().is_some(), "served graphs always carry weights");
        assert!(build_graph(&flags(&["--gen", "nope"])).is_err());
    }
}
