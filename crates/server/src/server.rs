//! The serving core: bounded admission in front of a fixed worker pool
//! over one shared immutable graph.
//!
//! ```text
//! conn threads ──parse──► admission ──try_push──► BoundedQueue ──pop──► workers
//!                  │          │                                           │
//!                  │          ├─ shutting-down / deadline-expired /       │
//!                  │          │  circuit-open / queue-full (structured    │
//!                  │          │  rejection, never a hang)                 │
//!                  └─ metrics (answered inline)            response ◄─────┘
//! ```
//!
//! Admission control happens on the connection thread — a request that
//! cannot be served is answered immediately with a taxonomy code and,
//! when retrying makes sense, a `retry_after_ms` hint. Admitted jobs
//! block their connection thread on a reply channel; workers execute at
//! most `workers` jobs concurrently and at most `queue_capacity` more
//! wait. Everything else is back-pressured to the client.
//!
//! **Drain** (SIGTERM/SIGINT or the programmatic handle): stop
//! accepting connections, reject new requests with `shutting-down`,
//! raise the server-wide cancel flag (in-flight and queued jobs stop at
//! their next operator boundary and leave exit snapshots when the
//! request asked for checkpoints), close the queue, join the workers,
//! and emit one final `gunrock-serve/v1` summary.

use crate::coalesce::{self, BatchMember, Coalescer, FlushReason, Offer};
use crate::jobs::{self, JobEnv, JobStatus, JobVerdict};
use crate::metrics::{bump, bump_by, read, BatchingSnapshot, MemorySnapshot, ServeMetrics};
use crate::protocol::{error_response, parse_request, ErrorCode, Request, SERVE_PRIMITIVES};
use crate::signal;
use gunrock_engine::breaker::{Admission, CircuitBreaker};
use gunrock_engine::budget::{estimate_bytes, MemoryBudget};
use gunrock_engine::faults::{FaultInjector, FaultPlan};
use gunrock_engine::pool::BufferPool;
use gunrock_engine::queue::{retry_after_hint, BoundedQueue, PushError};
use gunrock_engine::watchdog::{Heartbeat, Watchdog, WatchdogConfig};
use gunrock_graph::reorder::Relabeling;
use gunrock_graph::Csr;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Fixed worker-pool size (at least 1).
    pub workers: usize,
    /// Bounded job-queue capacity (at least 1); overflow is rejected
    /// with `queue-full`, never buffered.
    pub queue_capacity: usize,
    /// Consecutive operator panics that open a primitive's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Retry hint attached to `queue-full` rejections.
    pub retry_after: Duration,
    /// Root directory for per-request checkpoint subdirectories.
    pub checkpoint_dir: PathBuf,
    /// Server-wide fault plan (`--inject-faults`); per-request `inject`
    /// fields override it.
    pub fault_plan: Option<FaultPlan>,
    /// Serial fast-path cutoff for request contexts (None: engine default).
    pub serial_threshold: Option<usize>,
    /// Set when the served graph was relabeled (`--reorder`): requests
    /// still name original vertex ids, and per-vertex results are mapped
    /// back before hashing, so clients never observe internal ids.
    pub relabeling: Option<Arc<Relabeling>>,
    /// Cap on outstanding pooled bytes across all workers (one shared
    /// budget on the shared pool). 0 disables budgeting: requests are
    /// never memory-rejected and jobs never degrade.
    pub memory_budget: u64,
    /// Watchdog stall interval: a job silent this long is cancelled,
    /// and killed `interval/2` later. `None` disables the watchdog.
    pub watchdog_interval: Option<Duration>,
    /// Coalescing window: batchable point BFS queries wait up to this
    /// long to merge into one lane-packed MS-BFS job. Zero (the
    /// default) disables coalescing — every query is a solo job.
    pub batch_window: Duration,
    /// Lane cap per coalesced batch (clamped to 1..=64).
    pub batch_lanes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            retry_after: Duration::from_millis(100),
            checkpoint_dir: PathBuf::from("."),
            fault_plan: None,
            serial_threshold: None,
            relabeling: None,
            memory_budget: 0,
            watchdog_interval: None,
            batch_window: Duration::ZERO,
            batch_lanes: 64,
        }
    }
}

/// One queued unit of work: a solo request, or a sealed batch of
/// coalesced point queries sharing one lane-packed traversal.
enum Job {
    /// A request served on its own, with its reply channel.
    Single { req: Request, deadline: Option<Instant>, seq: u64, reply: mpsc::Sender<String> },
    /// A sealed coalescing window: one queue slot, many replies.
    Batch { members: Vec<BatchMember>, seq: u64 },
}

/// Shared server state: everything connection handlers and workers touch.
pub struct ServerState {
    graph: Arc<Csr>,
    cfg: ServerConfig,
    queue: BoundedQueue<Job>,
    breaker: CircuitBreaker,
    metrics: ServeMetrics,
    /// Stops admission; set by drain before the cancel flag.
    shutdown: AtomicBool,
    /// Raised on drain; new per-job cancel flags start from it and the
    /// inflight registry propagates it to jobs already running.
    drain_cancel: Arc<AtomicBool>,
    /// Per-job cancel flags of in-flight jobs, so drain can raise them
    /// all (each job otherwise owns its flag for watchdog cancellation).
    inflight: Mutex<Vec<Weak<AtomicBool>>>,
    pool: Arc<BufferPool>,
    /// Global memory budget shared by every worker through `pool`.
    budget: Option<Arc<MemoryBudget>>,
    /// Hung-job reaper; holds the background thread for the server's
    /// lifetime.
    watchdog: Option<Watchdog>,
    injector: Option<Arc<FaultInjector>>,
    /// The coalescing windows (`--batch-window-ms` > 0); `None` means
    /// every query is a solo job.
    coalescer: Option<Coalescer>,
    seq: AtomicU64,
}

impl ServerState {
    fn new(graph: Arc<Csr>, cfg: ServerConfig) -> Self {
        let injector = cfg.fault_plan.map(|plan| Arc::new(FaultInjector::new(plan)));
        let budget =
            (cfg.memory_budget > 0).then(|| Arc::new(MemoryBudget::new(cfg.memory_budget)));
        let mut pool = BufferPool::new();
        if let Some(b) = &budget {
            pool.install_budget(Arc::clone(b));
        }
        if let Some(inj) = &injector {
            // the shared pool carries the server-wide injector so the
            // `pool:alloc` fault site fires inside worker checkouts
            pool.install_injector(Arc::clone(inj));
        }
        let watchdog = cfg.watchdog_interval.map(|i| Watchdog::new(WatchdogConfig::new(i)));
        let coalescer = (!cfg.batch_window.is_zero())
            .then(|| Coalescer::new(cfg.batch_window, cfg.batch_lanes));
        ServerState {
            queue: BoundedQueue::new(cfg.queue_capacity),
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            metrics: ServeMetrics::default(),
            shutdown: AtomicBool::new(false),
            drain_cancel: Arc::new(AtomicBool::new(false)),
            inflight: Mutex::new(Vec::new()),
            pool: Arc::new(pool),
            budget,
            watchdog,
            injector,
            coalescer,
            seq: AtomicU64::new(0),
            graph,
            cfg,
        }
    }

    /// The serving metrics (exposed for tests and the drain summary).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    fn draining(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in
        // `begin_drain`; admission decisions made after the flag flips
        // see a fully-initialized drain state.
        self.shutdown.load(Ordering::Acquire)
    }

    fn render_metrics(&self, drained: bool) -> String {
        let memory = self.budget.as_ref().map(|b| {
            let pool = self.pool.stats();
            MemorySnapshot {
                budget_limit: b.limit(),
                budget_reserved: b.reserved(),
                peak_bytes: b.high_water(),
                denials: b.denials(),
                pool_bytes_live: pool.bytes_live,
                pool_bytes_high_water: pool.bytes_high_water,
            }
        });
        let batching = self.coalescer.as_ref().map(|c| BatchingSnapshot {
            window_ms: c.window().as_millis() as u64,
            lanes_cap: c.lanes() as u64,
        });
        self.metrics.render(
            self.cfg.workers,
            self.queue.len(),
            self.queue.capacity(),
            &self.breaker.snapshot(),
            memory.as_ref(),
            batching.as_ref(),
            drained,
        )
    }

    /// Registers one job's cancel flag for the drain sweep, pruning
    /// entries whose jobs have already finished.
    fn register_inflight(&self, cancel: &Arc<AtomicBool>) {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        inflight.retain(|w| w.strong_count() > 0);
        inflight.push(Arc::downgrade(cancel));
    }
}

/// Parses and answers one request line. This is the whole admission
/// pipeline; both the TCP and stdin front ends call it.
pub fn handle_request(state: &ServerState, line: &str) -> String {
    bump(&state.metrics.received);
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            bump(&state.metrics.rejected_bad_request);
            return error_response("", ErrorCode::BadRequest, &e, None);
        }
    };
    if req.primitive == "metrics" {
        return state.render_metrics(false);
    }
    if !SERVE_PRIMITIVES.contains(&req.primitive.as_str()) {
        bump(&state.metrics.rejected_bad_request);
        return error_response(
            &req.id,
            ErrorCode::UnknownPrimitive,
            &format!(
                "cannot serve {:?} (serves: {})",
                req.primitive,
                SERVE_PRIMITIVES.join(" ")
            ),
            None,
        );
    }
    if matches!(req.primitive.as_str(), "bfs" | "sssp" | "bc")
        && (req.src as usize) >= state.graph.num_vertices()
    {
        bump(&state.metrics.rejected_bad_request);
        return error_response(
            &req.id,
            ErrorCode::SrcOutOfRange,
            &format!("src {} >= {} vertices", req.src, state.graph.num_vertices()),
            None,
        );
    }
    if state.draining() {
        bump(&state.metrics.rejected_shutdown);
        return error_response(&req.id, ErrorCode::ShuttingDown, "server is draining", None);
    }
    // Admission control, part one: a zero budget can never be met —
    // reject before the job costs anyone anything.
    let arrival = Instant::now();
    let deadline = match req.deadline_ms {
        Some(0) => {
            bump(&state.metrics.rejected_deadline);
            return error_response(
                &req.id,
                ErrorCode::DeadlineExpired,
                "deadline_ms of 0 is already expired",
                None,
            );
        }
        Some(ms) => Some(arrival + Duration::from_millis(ms)),
        None => None,
    };
    match state.breaker.admit(&req.primitive) {
        Admission::Allow => {}
        Admission::Shed { retry_after } => {
            bump(&state.metrics.rejected_breaker);
            return error_response(
                &req.id,
                ErrorCode::CircuitOpen,
                &format!("{} breaker is open after repeated failures", req.primitive),
                Some(retry_after.as_millis() as u64),
            );
        }
    }
    // Coalescing: a batchable point BFS joins its policy class's open
    // window instead of going to the queue alone. The memory-budget
    // estimate is deliberately NOT charged here — the sealed batch is
    // charged exactly once at dispatch (`dispatch_batch`), which is the
    // amortization the coalescer exists for.
    if let Some(co) = &state.coalescer {
        if coalesce::batchable(&req) {
            let id = req.id.clone();
            let (tx, rx) = mpsc::channel();
            match co.offer(BatchMember { req, deadline, reply: tx }) {
                Offer::Pending => {}
                Offer::Sealed(members) => dispatch_batch(state, members, FlushReason::Full),
                Offer::Closed(_) => {
                    bump(&state.metrics.rejected_shutdown);
                    return error_response(
                        &id,
                        ErrorCode::ShuttingDown,
                        "server is draining",
                        None,
                    );
                }
            }
            return rx.recv().unwrap_or_else(|_| {
                error_response(&id, ErrorCode::Internal, "worker dropped the request", None)
            });
        }
    }
    // Memory admission: compare the pessimistic up-front footprint
    // against the budget before the job costs a queue slot. Over the
    // hard limit the request can never run (no retry hint); over the
    // current headroom the pressure is other in-flight jobs, so the
    // rejection carries a jittered, load-proportional retry hint.
    if let Some(budget) = &state.budget {
        let est = estimate_bytes(
            &req.primitive,
            state.graph.num_vertices() as u64,
            state.graph.num_edges() as u64,
        );
        if est > budget.limit() {
            bump(&state.metrics.rejected_over_budget);
            return error_response(
                &req.id,
                ErrorCode::OverBudget,
                &format!(
                    "{} needs an estimated {est} bytes; the budget is {} bytes",
                    req.primitive,
                    budget.limit()
                ),
                None,
            );
        }
        if est > budget.headroom() {
            bump(&state.metrics.rejected_over_budget);
            let hint = retry_after_hint(
                state.cfg.retry_after.as_millis() as u64,
                state.queue.len(),
                state.queue.capacity(),
                read(&state.metrics.received),
            );
            return error_response(
                &req.id,
                ErrorCode::OverBudget,
                &format!(
                    "{} needs an estimated {est} bytes; {} of {} are reserved — retry later",
                    req.primitive,
                    budget.reserved(),
                    budget.limit()
                ),
                Some(hint),
            );
        }
    }
    let (tx, rx) = mpsc::channel();
    // ORDERING: Relaxed — the sequence number only disambiguates
    // checkpoint directory names; no memory is published through it.
    let seq = state.seq.fetch_add(1, Ordering::Relaxed);
    let id = req.id.clone();
    match state.queue.try_push(Job::Single { req, deadline, seq, reply: tx }) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            bump(&state.metrics.rejected_queue_full);
            return error_response(
                &id,
                ErrorCode::QueueFull,
                &format!("job queue is full (capacity {})", state.queue.capacity()),
                Some(state.cfg.retry_after.as_millis() as u64),
            );
        }
        Err(PushError::Closed(_)) => {
            bump(&state.metrics.rejected_shutdown);
            return error_response(&id, ErrorCode::ShuttingDown, "server is draining", None);
        }
    }
    bump(&state.metrics.admitted);
    // The worker owns the sending half; a drop without a send means the
    // worker died mid-job (a server bug, not a client error).
    rx.recv().unwrap_or_else(|_| {
        error_response(&id, ErrorCode::Internal, "worker dropped the request", None)
    })
}

/// Dispatches one sealed batch: bump the flush-reason counter, charge
/// the memory estimate ONCE for the whole batch (the `msbfs` footprint,
/// not `lanes` x the solo BFS footprint), and push a single queue slot.
/// Every rejection answers every member — a sealed batch never strands
/// a blocked connection thread.
fn dispatch_batch(state: &ServerState, members: Vec<BatchMember>, reason: FlushReason) {
    match reason {
        FlushReason::Full => bump(&state.metrics.batch_flush_full),
        FlushReason::Window => bump(&state.metrics.batch_flush_window),
        FlushReason::Drain => bump(&state.metrics.batch_flush_drain),
    }
    if let Some(budget) = &state.budget {
        let est = estimate_bytes(
            "msbfs",
            state.graph.num_vertices() as u64,
            state.graph.num_edges() as u64,
        );
        let reject = |retry: Option<u64>, message: &str| {
            for m in &members {
                bump(&state.metrics.rejected_over_budget);
                let _ = m.reply.send(error_response(
                    &m.req.id,
                    ErrorCode::OverBudget,
                    message,
                    retry,
                ));
            }
        };
        if est > budget.limit() {
            reject(
                None,
                &format!(
                    "batched bfs needs an estimated {est} bytes; the budget is {} bytes",
                    budget.limit()
                ),
            );
            return;
        }
        if est > budget.headroom() {
            let hint = retry_after_hint(
                state.cfg.retry_after.as_millis() as u64,
                state.queue.len(),
                state.queue.capacity(),
                read(&state.metrics.received),
            );
            reject(
                Some(hint),
                &format!(
                    "batched bfs needs an estimated {est} bytes; {} of {} are reserved — \
                     retry later",
                    budget.reserved(),
                    budget.limit()
                ),
            );
            return;
        }
    }
    // ORDERING: Relaxed — see the solo path; the sequence number only
    // disambiguates checkpoint directory names.
    let seq = state.seq.fetch_add(1, Ordering::Relaxed);
    let count = members.len() as u64;
    match state.queue.try_push(Job::Batch { members, seq }) {
        Ok(()) => {
            bump_by(&state.metrics.admitted, count);
            bump(&state.metrics.batches);
            bump_by(&state.metrics.batched_lanes, count);
        }
        Err(PushError::Full(Job::Batch { members, .. })) => {
            for m in members {
                bump(&state.metrics.rejected_queue_full);
                let _ = m.reply.send(error_response(
                    &m.req.id,
                    ErrorCode::QueueFull,
                    &format!("job queue is full (capacity {})", state.queue.capacity()),
                    Some(state.cfg.retry_after.as_millis() as u64),
                ));
            }
        }
        Err(PushError::Closed(Job::Batch { members, .. })) => {
            for m in members {
                bump(&state.metrics.rejected_shutdown);
                let _ = m.reply.send(error_response(
                    &m.req.id,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                    None,
                ));
            }
        }
        // push errors return the job they were handed; a Batch in can
        // only come back out as a Batch
        Err(PushError::Full(Job::Single { .. }) | PushError::Closed(Job::Single { .. })) => {
            unreachable!("try_push returned a different job than it was given")
        }
    }
}

fn record_verdict(state: &ServerState, primitive: &str, verdict: &JobVerdict) {
    match verdict.status {
        JobStatus::Ok => bump(&state.metrics.completed_ok),
        JobStatus::Partial => bump(&state.metrics.completed_partial),
        JobStatus::Failed => bump(&state.metrics.failed),
        JobStatus::Rejected => bump(&state.metrics.rejected_deadline),
    }
    if verdict.deadline_missed {
        bump(&state.metrics.deadline_misses);
    }
    if verdict.checkpointed {
        bump(&state.metrics.checkpoints_written);
    }
    if verdict.degrades > 0 {
        bump_by(&state.metrics.degraded, verdict.degrades);
    }
    if verdict.breaker_failure {
        state.breaker.record_failure(primitive);
    } else if matches!(verdict.status, JobStatus::Ok | JobStatus::Partial) {
        state.breaker.record_success(primitive);
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        // Each job owns its cancel flag (so the watchdog can cancel one
        // job without draining the server), seeded from the drain flag
        // for jobs popped after a drain began, and registered so drain
        // reaches jobs already running.
        // ORDERING: Acquire — pairs with the Release store in drain() so
        // a job popped after drain starts observes the raised flag.
        let job_cancel = Arc::new(AtomicBool::new(state.drain_cancel.load(Ordering::Acquire)));
        state.register_inflight(&job_cancel);
        let heartbeat = state.watchdog.as_ref().map(|_| Arc::new(Heartbeat::new()));
        // While watched, a kill answers the client(s) from the reaper
        // thread (the worker is presumed wedged), counts the failure,
        // and feeds the primitive's breaker so followers are shed. A
        // batch kill answers every lane: one wedged sweep must not
        // strand 64 connection threads.
        let watch = match (&state.watchdog, &heartbeat) {
            (Some(dog), Some(hb)) => {
                let st = Arc::clone(state);
                let targets: Vec<(String, mpsc::Sender<String>)> = match &job {
                    Job::Single { req, reply, .. } => vec![(req.id.clone(), reply.clone())],
                    Job::Batch { members, .. } => {
                        members.iter().map(|m| (m.req.id.clone(), m.reply.clone())).collect()
                    }
                };
                let primitive = match &job {
                    Job::Single { req, .. } => req.primitive.clone(),
                    Job::Batch { .. } => "bfs".to_string(),
                };
                Some(dog.watch(
                    Arc::clone(hb),
                    Arc::clone(&job_cancel),
                    Box::new(move || {
                        bump(&st.metrics.watchdog_kills);
                        st.breaker.record_failure(&primitive);
                        for (id, reply) in &targets {
                            bump(&st.metrics.failed);
                            let _ = reply.send(error_response(
                                id,
                                ErrorCode::WatchdogKilled,
                                "job stopped heartbeating and ignored cancellation; \
                                 the watchdog reaped it",
                                None,
                            ));
                        }
                    }),
                ))
            }
            _ => None,
        };
        let env = JobEnv {
            graph: &state.graph,
            relab: state.cfg.relabeling.as_deref(),
            cancel: &job_cancel,
            heartbeat: heartbeat.as_ref(),
            pool: &state.pool,
            injector: state.injector.as_ref(),
            serial_threshold: state.cfg.serial_threshold,
            checkpoint_root: &state.cfg.checkpoint_dir,
        };
        // Last line of defense: `jobs::run_job` already isolates operator
        // panics inside the request context; this catches bugs in the
        // dispatch layer itself so one bad request can never take the
        // worker (and with it the whole pool) down.
        match job {
            Job::Single { req, deadline, seq, reply } => {
                let verdict =
                    catch_unwind(AssertUnwindSafe(|| jobs::run_job(&env, &req, deadline, seq)))
                        .unwrap_or_else(|_| JobVerdict {
                            response: error_response(
                                &req.id,
                                ErrorCode::Internal,
                                "request dispatch panicked",
                                None,
                            ),
                            status: JobStatus::Failed,
                            breaker_failure: true,
                            deadline_missed: false,
                            checkpointed: false,
                            degrades: 0,
                        });
                let killed = heartbeat.as_ref().is_some_and(|hb| hb.is_killed());
                drop(watch);
                if killed {
                    // the kill callback already answered the client and
                    // recorded the failure; a late worker result would
                    // double-count
                    continue;
                }
                record_verdict(state, &req.primitive, &verdict);
                // A send error means the connection thread gave up
                // (client went away); the work is done either way.
                let _ = reply.send(verdict.response);
            }
            Job::Batch { members, seq } => {
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| jobs::run_batch(&env, &members, seq)))
                        .unwrap_or_else(|_| jobs::BatchOutcome::internal(&members));
                let killed = heartbeat.as_ref().is_some_and(|hb| hb.is_killed());
                drop(watch);
                if killed {
                    continue;
                }
                if outcome.fell_back {
                    bump(&state.metrics.batch_fallbacks);
                }
                for (m, verdict) in members.iter().zip(outcome.verdicts) {
                    record_verdict(state, &m.req.primitive, &verdict);
                    let _ = m.reply.send(verdict.response);
                }
            }
        }
    }
}

/// A running server plus its drain handle.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    supervisor: thread::JoinHandle<String>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for inspecting metrics in tests.
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Programmatic SIGTERM: starts the drain sequence.
    pub fn shutdown(&self) {
        // ORDERING: Release — pairs with the Acquire load in
        // `ServerState::draining`; everything written before the drain
        // request is visible to admission checks that observe it.
        self.state.shutdown.store(true, Ordering::Release);
    }

    /// Waits for the drain to finish and returns the final
    /// `gunrock-serve/v1` summary document.
    pub fn join(self) -> String {
        self.supervisor.join().unwrap_or_else(|_| {
            // The supervisor never panics by construction; if it somehow
            // did, synthesize a summary so callers still get valid JSON.
            self.state.render_metrics(true)
        })
    }
}

fn spawn_workers(state: &Arc<ServerState>) -> Vec<thread::JoinHandle<()>> {
    (0..state.cfg.workers.max(1))
        .map(|i| {
            let state = Arc::clone(state);
            thread::Builder::new()
                .name(format!("gunrock-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .unwrap_or_else(|e| {
                    // LINT-ALLOW(panic): failing to spawn the worker pool at
                    // startup is unrecoverable misconfiguration; surface it
                    // before the server accepts any work.
                    panic!("cannot spawn worker thread: {e}")
                })
        })
        .collect()
}

/// Spawns the coalescing flusher: a background sweep that seals windows
/// older than `--batch-window-ms` so a lone query never waits on lanes
/// that may not come. Exits when the server starts draining. `None`
/// when coalescing is disabled.
fn spawn_flusher(state: &Arc<ServerState>) -> Option<thread::JoinHandle<()>> {
    let tick = state.coalescer.as_ref()?.tick();
    let st = Arc::clone(state);
    thread::Builder::new()
        .name("gunrock-coalesce".to_string())
        .spawn(move || {
            while !st.draining() {
                thread::sleep(tick);
                if let Some(co) = &st.coalescer {
                    for members in co.take_expired() {
                        dispatch_batch(&st, members, FlushReason::Window);
                    }
                }
            }
        })
        .ok()
}

/// Runs the drain sequence: stop admitting, cancel in-flight work, close
/// the queue, join the workers, render the summary.
fn drain(state: &Arc<ServerState>, workers: Vec<thread::JoinHandle<()>>) -> String {
    // ORDERING: Release — pairs with `ServerState::draining`'s Acquire
    // load on connection threads; admission stops before jobs observe
    // the cancel flag below.
    state.shutdown.store(true, Ordering::Release);
    // ORDERING: Release — pairs with the Acquire load seeding each new
    // per-job cancel flag; jobs popped after this point start cancelled.
    state.drain_cancel.store(true, Ordering::Release);
    // Jobs already running own per-job flags (the watchdog's cancel
    // channel); raise them all so in-flight work stops at its next
    // operator boundary.
    {
        let mut inflight = state.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        for weak in inflight.drain(..) {
            if let Some(flag) = weak.upgrade() {
                // ORDERING: Release — pairs with the Acquire polls inside
                // operator chunk loops (`Context::cancel_requested`).
                flag.store(true, Ordering::Release);
            }
        }
    }
    // Half-filled coalescing windows are flushed INTO the queue before
    // it closes: their members get real (cancelled-partial) answers from
    // the workers instead of hanging on a window nobody will seal. The
    // close also bounces any racing late offer with `shutting-down`.
    if let Some(co) = &state.coalescer {
        for members in co.close() {
            dispatch_batch(state, members, FlushReason::Drain);
        }
    }
    state.queue.close();
    for w in workers {
        let _ = w.join();
    }
    state.render_metrics(true)
}

/// Handles one TCP connection: line in, line out, until the peer closes
/// or the server drains. Read timeouts keep the loop responsive to
/// drain without dropping bytes of a partial line.
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream;
    let mut writer = match reader.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            let response = handle_request(state, trimmed);
            if writer.write_all(response.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
                || writer.flush().is_err()
            {
                return;
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Starts a TCP server on `127.0.0.1:port` (0 picks a free port) and
/// returns its handle. The accept loop runs on a supervisor thread and
/// drains on SIGTERM/SIGINT (when [`signal::install`]ed) or on
/// [`ServerHandle::shutdown`].
pub fn start(graph: Arc<Csr>, cfg: ServerConfig, port: u16) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
    let state = Arc::new(ServerState::new(graph, cfg));
    let supervisor_state = Arc::clone(&state);
    let supervisor = thread::Builder::new()
        .name("gunrock-serve".to_string())
        .spawn(move || {
            let mut workers = spawn_workers(&supervisor_state);
            workers.extend(spawn_flusher(&supervisor_state));
            loop {
                if supervisor_state.draining() || signal::shutdown_requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_state = Arc::clone(&supervisor_state);
                        let _ = thread::Builder::new()
                            .name("gunrock-conn".to_string())
                            .spawn(move || serve_connection(stream, &conn_state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
            drain(&supervisor_state, workers)
        })
        .map_err(|e| format!("cannot spawn the supervisor thread: {e}"))?;
    Ok(ServerHandle { addr, state, supervisor })
}

/// Serves line-delimited requests from stdin to stdout — the scripting
/// front end (`gunrock-serve --stdin`). Returns the drain summary after
/// EOF.
pub fn serve_stdin(graph: Arc<Csr>, cfg: ServerConfig) -> String {
    let state = Arc::new(ServerState::new(graph, cfg));
    let mut workers = spawn_workers(&state);
    workers.extend(spawn_flusher(&state));
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        if signal::shutdown_requested() {
            break;
        }
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                println!("{}", handle_request(&state, trimmed));
            }
            Err(_) => break,
        }
    }
    drain(&state, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    fn small_graph() -> Arc<Csr> {
        Arc::new(GraphBuilder::new().build(Coo::from_edges(16, &[(0, 1), (1, 2), (2, 3)])))
    }

    fn state_fixture(cfg: ServerConfig) -> Arc<ServerState> {
        Arc::new(ServerState::new(small_graph(), cfg))
    }

    /// Runs `handle_request` with a worker pool behind it.
    fn with_workers<T>(state: &Arc<ServerState>, body: impl FnOnce() -> T) -> T {
        let workers = spawn_workers(state);
        let out = body();
        state.queue.close();
        for w in workers {
            let _ = w.join();
        }
        out
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let state = state_fixture(ServerConfig::default());
        let resp = with_workers(&state, || {
            handle_request(&state, r#"{"id":"q1","primitive":"bfs","src":0}"#)
        });
        assert!(resp.contains("\"status\":\"ok\""), "got: {resp}");
        assert!(resp.contains("\"id\":\"q1\""));
        assert_eq!(crate::metrics::read(&state.metrics.admitted), 1);
        assert_eq!(crate::metrics::read(&state.metrics.completed_ok), 1);
    }

    #[test]
    fn admission_rejections_are_structured() {
        let state = state_fixture(ServerConfig::default());
        // no workers needed: all of these are rejected before the queue
        let bad = handle_request(&state, "{");
        assert!(bad.contains("bad-request"));
        let unknown = handle_request(&state, r#"{"primitive":"mst"}"#);
        assert!(unknown.contains("unknown-primitive"));
        let oob = handle_request(&state, r#"{"primitive":"bfs","src":99}"#);
        assert!(oob.contains("src-out-of-range"));
        let expired = handle_request(&state, r#"{"primitive":"bfs","deadline_ms":0}"#);
        assert!(expired.contains("deadline-expired"));
        let m = state.metrics();
        assert_eq!(crate::metrics::read(&m.rejected_bad_request), 3);
        assert_eq!(crate::metrics::read(&m.rejected_deadline), 1);
        assert_eq!(crate::metrics::read(&m.admitted), 0);
    }

    #[test]
    fn draining_state_rejects_new_requests() {
        let state = state_fixture(ServerConfig::default());
        // ORDERING: Release — test stand-in for the drain sequence.
        state.shutdown.store(true, Ordering::Release);
        let resp = handle_request(&state, r#"{"primitive":"bfs"}"#);
        assert!(resp.contains("shutting-down"));
    }

    #[test]
    fn hopeless_footprint_is_rejected_permanently() {
        // 1 KiB can never hold a bfs working set even on 16 vertices
        let cfg = ServerConfig { memory_budget: 1024, ..ServerConfig::default() };
        let state = state_fixture(cfg);
        let resp = handle_request(&state, r#"{"id":"b1","primitive":"bfs","src":0}"#);
        assert!(resp.contains("over-budget"), "got: {resp}");
        assert!(
            !resp.contains("retry_after_ms"),
            "a permanent rejection must not suggest retrying: {resp}"
        );
        assert_eq!(crate::metrics::read(&state.metrics.rejected_over_budget), 1);
        assert_eq!(crate::metrics::read(&state.metrics.admitted), 0);
        // the sleep diagnostic has a zero footprint and always fits
        let ok = with_workers(&state, || {
            handle_request(&state, r#"{"id":"s1","primitive":"sleep","duration_ms":1}"#)
        });
        assert!(ok.contains("\"status\":\"ok\""), "got: {ok}");
    }

    #[test]
    fn transient_pressure_is_rejected_with_a_retry_hint() {
        let cfg = ServerConfig { memory_budget: 1 << 20, ..ServerConfig::default() };
        let state = state_fixture(cfg);
        let budget = state.budget.as_ref().expect("budget configured");
        // simulate other jobs holding nearly the whole budget
        budget.try_reserve(budget.limit() - 512).unwrap();
        let resp = handle_request(&state, r#"{"id":"b2","primitive":"bfs","src":0}"#);
        assert!(resp.contains("over-budget"), "got: {resp}");
        assert!(resp.contains("retry_after_ms"), "transient pressure hints a retry: {resp}");
        assert_eq!(crate::metrics::read(&state.metrics.rejected_over_budget), 1);
        // pressure clears: the same request is admitted and served
        budget.release(budget.limit() - 512);
        let resp = with_workers(&state, || {
            handle_request(&state, r#"{"id":"b3","primitive":"bfs","src":0}"#)
        });
        assert!(resp.contains("\"status\":\"ok\""), "got: {resp}");
        let doc = state.render_metrics(false);
        assert!(doc.contains("\"memory\""), "budgeted server renders memory gauges: {doc}");
        assert!(doc.contains("\"peak_bytes\""), "got: {doc}");
    }

    #[test]
    fn stalled_job_is_reaped_and_answered_watchdog_killed() {
        let interval = Duration::from_millis(60);
        let cfg = ServerConfig { watchdog_interval: Some(interval), ..ServerConfig::default() };
        let state = state_fixture(cfg);
        let start = Instant::now();
        let resp = with_workers(&state, || {
            handle_request(
                &state,
                r#"{"id":"w1","primitive":"bfs","inject":"stall=1.0","fault_seed":1}"#,
            )
        });
        assert!(resp.contains("watchdog-killed"), "got: {resp}");
        assert!(resp.contains("\"status\":\"failed\""), "got: {resp}");
        assert!(
            start.elapsed() < 2 * interval + Duration::from_millis(40),
            "reap took {:?}, bound is 2 * {interval:?}",
            start.elapsed()
        );
        assert_eq!(crate::metrics::read(&state.metrics.watchdog_kills), 1);
        assert_eq!(crate::metrics::read(&state.metrics.failed), 1);
        assert_eq!(state.watchdog.as_ref().unwrap().kills(), 1);
    }

    #[test]
    fn heartbeating_sleep_job_is_not_reaped() {
        // slow (3x the interval) but ticking every 2ms: must complete
        let cfg = ServerConfig {
            watchdog_interval: Some(Duration::from_millis(20)),
            ..ServerConfig::default()
        };
        let state = state_fixture(cfg);
        let resp = with_workers(&state, || {
            handle_request(&state, r#"{"id":"s2","primitive":"sleep","duration_ms":60}"#)
        });
        assert!(resp.contains("\"status\":\"ok\""), "got: {resp}");
        assert_eq!(crate::metrics::read(&state.metrics.watchdog_kills), 0);
    }

    #[test]
    fn capacity_sealed_batch_answers_every_lane_from_one_queue_slot() {
        let cfg = ServerConfig {
            // a window long enough that only the lane cap can seal it
            batch_window: Duration::from_secs(60),
            batch_lanes: 3,
            ..ServerConfig::default()
        };
        let state = state_fixture(cfg);
        let responses = with_workers(&state, || {
            let handles: Vec<_> = (0..3u32)
                .map(|src| {
                    let st = Arc::clone(&state);
                    thread::spawn(move || {
                        handle_request(
                            &st,
                            &format!(
                                "{{\"id\":\"q{src}\",\"primitive\":\"bfs\",\"src\":{src}}}"
                            ),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for resp in &responses {
            assert!(resp.contains("\"status\":\"ok\""), "got: {resp}");
            assert!(resp.contains("\"batched\":true"), "got: {resp}");
            assert!(resp.contains("\"batch_lanes\":3"), "got: {resp}");
        }
        let m = state.metrics();
        assert_eq!(read(&m.admitted), 3, "every lane counts as admitted");
        assert_eq!(read(&m.completed_ok), 3);
        assert_eq!(read(&m.batches), 1, "one queue slot served all three");
        assert_eq!(read(&m.batched_lanes), 3);
        assert_eq!(read(&m.batch_flush_full), 1);
        assert_eq!(read(&m.batch_fallbacks), 0);
        let doc = state.render_metrics(false);
        assert!(doc.contains("\"batching\""), "windowed server renders batching: {doc}");
        assert!(doc.contains("\"occupancy\":3"), "got: {doc}");
    }

    #[test]
    fn poisoned_lane_fails_alone_while_batch_mates_answer() {
        let cfg = ServerConfig {
            batch_window: Duration::from_secs(60),
            batch_lanes: 2,
            ..ServerConfig::default()
        };
        let state = state_fixture(cfg);
        let (bad, good) = with_workers(&state, || {
            let st = Arc::clone(&state);
            let bad = thread::spawn(move || {
                handle_request(
                    &st,
                    r#"{"id":"bad","primitive":"bfs","src":0,"inject":"panic=1.0"}"#,
                )
            });
            // give the poisoned query time to open the window so both
            // land in the same batch regardless of scheduling
            thread::sleep(Duration::from_millis(30));
            let st = Arc::clone(&state);
            let good = thread::spawn(move || {
                handle_request(&st, r#"{"id":"good","primitive":"bfs","src":1}"#)
            });
            (bad.join().unwrap(), good.join().unwrap())
        });
        assert!(bad.contains("operator-panic"), "got: {bad}");
        assert!(good.contains("\"status\":\"ok\""), "got: {good}");
        let m = state.metrics();
        assert_eq!(read(&m.batch_fallbacks), 1, "the shared sweep fell back to isolation");
        assert_eq!(read(&m.completed_ok), 1);
        assert_eq!(read(&m.failed), 1);
    }

    #[test]
    fn drain_flushes_a_half_filled_window_with_real_answers() {
        let cfg = ServerConfig {
            batch_window: Duration::from_secs(60),
            batch_lanes: 64,
            ..ServerConfig::default()
        };
        let state = state_fixture(cfg);
        let workers = spawn_workers(&state);
        let st = Arc::clone(&state);
        let waiting = thread::spawn(move || {
            handle_request(&st, r#"{"id":"w","primitive":"bfs","src":0}"#)
        });
        // let the query join the (never-filling) window
        thread::sleep(Duration::from_millis(50));
        let summary = drain(&state, workers);
        let resp = waiting.join().unwrap();
        assert!(
            resp.contains("\"status\":\"ok\"") || resp.contains("\"status\":\"partial\""),
            "a drained window member gets a real answer, got: {resp}"
        );
        assert_eq!(read(&state.metrics.batch_flush_drain), 1);
        assert!(summary.contains("\"drained\":true"));
        // late batchable arrivals bounce instead of stranding
        let late = handle_request(&state, r#"{"id":"l","primitive":"bfs","src":1}"#);
        assert!(late.contains("shutting-down"), "got: {late}");
    }

    #[test]
    fn window_expiry_flushes_a_lone_query_through_the_flusher() {
        let cfg = ServerConfig {
            batch_window: Duration::from_millis(5),
            batch_lanes: 64,
            ..ServerConfig::default()
        };
        let state = state_fixture(cfg);
        let workers = spawn_workers(&state);
        let flusher = spawn_flusher(&state).expect("coalescing server spawns a flusher");
        let resp = handle_request(&state, r#"{"id":"solo","primitive":"bfs","src":0}"#);
        assert!(resp.contains("\"status\":\"ok\""), "got: {resp}");
        assert!(resp.contains("\"batch_lanes\":1"), "got: {resp}");
        assert_eq!(read(&state.metrics.batch_flush_window), 1);
        // ORDERING: Release — test stand-in for the drain sequence.
        state.shutdown.store(true, Ordering::Release);
        state.queue.close();
        for w in workers {
            let _ = w.join();
        }
        let _ = flusher.join();
    }

    #[test]
    fn metrics_meta_request_bypasses_the_queue() {
        let state = state_fixture(ServerConfig::default());
        let resp = handle_request(&state, r#"{"primitive":"metrics"}"#);
        assert!(resp.contains("gunrock-serve/v1"));
        assert!(resp.contains("\"capacity\":16"));
        assert_eq!(crate::metrics::read(&state.metrics.admitted), 0);
    }
}
