//! `gunrock-serve`: the standalone service binary. All logic lives in
//! the library crate so it can be driven in-process by tests.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(gunrock_server::cli::run_serve(args));
}
