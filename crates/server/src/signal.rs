//! Minimal SIGTERM/SIGINT latch for graceful drain.
//!
//! The handler does the only async-signal-safe thing it can: store one
//! atomic flag. The accept loop polls [`shutdown_requested`] and runs
//! the drain sequence on its own thread — no work happens in signal
//! context. The flag is process-global (POSIX signals are), so
//! in-process tests use the per-server programmatic shutdown instead and
//! never call [`install`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM/SIGINT was delivered (or [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    // ORDERING: SeqCst — a single flag on the slow shutdown path; the
    // strongest ordering keeps the signal-handler store trivially
    // correct and costs nothing here.
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatic equivalent of a delivered signal.
pub fn request_shutdown() {
    // ORDERING: SeqCst — pairs with the load in `shutdown_requested`.
    // AUDIT-OK(one store on the shutdown path, shared with a signal
    // handler; keeping every site SeqCst keeps the async-signal-safety
    // argument one sentence long, and Release/Acquire would save nothing
    // measurable here)
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe by construction: a lock-free atomic store is the
    // entire handler body.
    // ORDERING: SeqCst — pairs with the load in `shutdown_requested`.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

// SAFETY: `signal` is the C standard library's signal(2) registration
// entry point; declaring it with the handler as a plain function-pointer
//-sized integer matches the Linux ABI (sighandler_t is a pointer).
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the SIGTERM (15) and SIGINT (2) handlers. Call once from the
/// `gunrock-serve` binary before accepting connections; library users
/// (tests) should prefer the programmatic shutdown handle.
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `on_signal` is async-signal-safe (one atomic store, no
    // allocation, no locks) and has the `extern "C" fn(i32)` ABI that
    // sighandler_t expects; casting through usize is the stable way to
    // pass it without a libc dependency. Replacing the default
    // disposition for SIGTERM/SIGINT cannot invalidate other state.
    unsafe {
        let _ = signal(15, on_signal as *const () as usize);
        let _ = signal(2, on_signal as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_sets_the_latch() {
        // NOTE: the latch is process-global and sticky, so this is the
        // only test that may touch it.
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
