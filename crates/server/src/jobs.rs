//! Per-request execution: primitive dispatch, result summaries, and the
//! FNV result hash clients use to assert bit-identical resumes.
//!
//! A job runs on a worker thread inside its own [`Context`]: per-request
//! `RunPolicy` (deadline budget, iteration cap, the server-wide drain
//! flag as the cancel flag), per-request checkpoint directory, and a
//! per-request or server-wide fault injector. Operator panics poison
//! only that context — the worker maps them to an `operator-panic`
//! response and keeps serving.

use crate::coalesce::BatchMember;
use crate::protocol::{error_response, ErrorCode, Request, SCHEMA};
use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_engine::json::JsonBuilder;
use gunrock_engine::pool::BufferPool;
use gunrock_engine::watchdog::Heartbeat;
use gunrock_graph::reorder::Relabeling;
use gunrock_graph::{Csr, INFINITY};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a dispatched job ended, for metrics and the circuit breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Converged result.
    Ok,
    /// Guard-tripped partial result (deadline, cap, or drain cancel).
    Partial,
    /// Ran but failed (operator panic / resume failure).
    Failed,
    /// Never ran (deadline spent before dispatch).
    Rejected,
}

/// A finished job: the response line plus bookkeeping flags.
#[derive(Clone, Debug)]
pub struct JobVerdict {
    /// The response line to send back.
    pub response: String,
    /// Completion class for metrics.
    pub status: JobStatus,
    /// Counts toward the primitive's circuit breaker (operator panics
    /// only — overload and client errors do not open the breaker).
    pub breaker_failure: bool,
    /// The wall-clock budget tripped mid-run.
    pub deadline_missed: bool,
    /// A resumable snapshot was written for this request.
    pub checkpointed: bool,
    /// Degradation-ladder rungs the job took under memory pressure.
    pub degrades: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_bytes(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the little-endian bytes of a `u32` result array.
pub fn hash_u32s(xs: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for x in xs {
        h = fnv1a_bytes(h, &x.to_le_bytes());
    }
    h
}

/// FNV-1a over the IEEE-754 bit patterns of an `f64` result array —
/// equal hashes mean bit-identical score vectors.
pub fn hash_f64s(xs: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for x in xs {
        h = fnv1a_bytes(h, &x.to_bits().to_le_bytes());
    }
    h
}

/// Everything a worker needs to run one admitted request.
pub struct JobEnv<'a> {
    /// The shared immutable graph (also used as its own reverse: served
    /// graphs are built symmetric).
    pub graph: &'a Csr,
    /// Set when `graph` is a `--reorder` relabeling of the input graph:
    /// request sources are translated in, per-vertex results are mapped
    /// back to original ids before hashing.
    pub relab: Option<&'a Relabeling>,
    /// Per-job cooperative cancel flag, threaded into the job's
    /// `RunPolicy`. Raised by the drain sequence (all in-flight jobs)
    /// or by the watchdog (this job stalled) — either way the job stops
    /// at its next operator boundary.
    pub cancel: &'a Arc<AtomicBool>,
    /// Watchdog heartbeat for this job, ticked at operator boundaries
    /// (and inside the `sleep` poll loop). `None` when no watchdog is
    /// configured.
    pub heartbeat: Option<&'a Arc<Heartbeat>>,
    /// Shared buffer pool behind every request context.
    pub pool: &'a Arc<BufferPool>,
    /// Server-wide fault injector (per-request `inject` overrides it).
    pub injector: Option<&'a Arc<FaultInjector>>,
    /// Serial fast-path cutoff override for request contexts.
    pub serial_threshold: Option<usize>,
    /// Root directory for per-request checkpoint subdirectories.
    pub checkpoint_root: &'a Path,
}

/// Per-request checkpoint directory: isolates each request's
/// `<primitive>.ckpt` so concurrent requests never clobber each other.
fn request_dir(root: &Path, id: &str, seq: u64) -> PathBuf {
    let safe: String = id
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .take(48)
        .collect();
    if safe.is_empty() {
        root.join(format!("req-{seq}"))
    } else {
        root.join(safe)
    }
}

struct RunSummary {
    outcome: RunOutcome,
    iterations: u32,
    elapsed: Duration,
    result_hash: u64,
    reached: Option<u64>,
    num_components: Option<u64>,
}

fn respond_result(
    req: &Request,
    summary: &RunSummary,
    checkpoint: Option<&Path>,
    resumed: bool,
    batch_lanes: Option<u64>,
) -> String {
    let mut b = JsonBuilder::new();
    b.begin_object();
    b.field_str("schema", SCHEMA);
    b.field_str("id", &req.id);
    b.field_str("status", if summary.outcome.is_converged() { "ok" } else { "partial" });
    b.field_str("primitive", &req.primitive);
    b.field_str("outcome", &summary.outcome.to_string());
    b.field_u64("iterations", u64::from(summary.iterations));
    b.field_f64("elapsed_ms", summary.elapsed.as_secs_f64() * 1e3);
    b.field_str("result_hash", &format!("{:016x}", summary.result_hash));
    if let Some(reached) = summary.reached {
        b.field_u64("reached", reached);
    }
    if let Some(n) = summary.num_components {
        b.field_u64("num_components", n);
    }
    if let Some(path) = checkpoint {
        b.field_str("checkpoint", &path.display().to_string());
    }
    if let Some(lanes) = batch_lanes {
        b.field_bool("batched", true);
        b.field_u64("batch_lanes", lanes);
    }
    b.field_bool("resumed", resumed);
    b.end_object();
    b.finish()
}

fn count_reached(labels: &[u32]) -> u64 {
    labels.iter().filter(|&&l| l != INFINITY).count() as u64
}

/// Hash of a per-vertex value array in original-id order (depths,
/// distances): restores the permutation first on a reordered server so
/// hashes are comparable with an unreordered one.
fn hash_restored_u32(relab: Option<&Relabeling>, v: &[u32]) -> u64 {
    match relab {
        Some(r) => hash_u32s(&r.restore_values(v)),
        None => hash_u32s(v),
    }
}

/// Hash of a per-vertex array whose elements are vertex ids (component
/// labels): restores positions AND translates the stored ids.
fn hash_restored_ids(relab: Option<&Relabeling>, v: &[u32]) -> u64 {
    match relab {
        Some(r) => hash_u32s(&r.restore_ids(v)),
        None => hash_u32s(v),
    }
}

/// Hash of a per-vertex `f64` score array in original-id order.
fn hash_restored_f64(relab: Option<&Relabeling>, v: &[f64]) -> u64 {
    match relab {
        Some(r) => hash_f64s(&r.restore_values(v)),
        None => hash_f64s(v),
    }
}

fn summarize_resumed(
    run: &algos::recover::ResumedRun,
    relab: Option<&Relabeling>,
) -> RunSummary {
    use algos::recover::ResumedRun;
    match run {
        ResumedRun::Bfs(r) => RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_u32(relab, &r.labels),
            reached: Some(count_reached(&r.labels)),
            num_components: None,
        },
        ResumedRun::Sssp(r) => RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_u32(relab, &r.dist),
            reached: Some(count_reached(&r.dist)),
            num_components: None,
        },
        ResumedRun::Bc(r) => RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_f64(relab, &r.bc_values),
            reached: None,
            num_components: None,
        },
        ResumedRun::Cc(r) => RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_ids(relab, &r.labels),
            reached: None,
            num_components: Some(r.num_components as u64),
        },
        ResumedRun::PageRank(r) => RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_f64(relab, &r.scores),
            reached: None,
            num_components: None,
        },
        // Batched resumes cannot be requested through the protocol (the
        // served primitive set has no "msbfs"/"msppr" and resume demands
        // the names match), but the summary is still honest: hash the
        // lane-major matrix lane by lane in original-id order.
        ResumedRun::Msbfs(r) => {
            let restored: Vec<u32> = (0..r.lanes())
                .flat_map(|l| match relab {
                    Some(rl) => rl.restore_values(r.lane_depths(l)),
                    None => r.lane_depths(l).to_vec(),
                })
                .collect();
            RunSummary {
                outcome: r.outcome,
                iterations: r.iterations,
                elapsed: r.elapsed,
                result_hash: hash_u32s(&restored),
                reached: Some(count_reached(&restored)),
                num_components: None,
            }
        }
        ResumedRun::Msppr(r) => {
            let restored: Vec<f64> = (0..r.sources.len())
                .flat_map(|l| match relab {
                    Some(rl) => rl.restore_values(r.lane_scores(l)),
                    None => r.lane_scores(l).to_vec(),
                })
                .collect();
            RunSummary {
                outcome: r.outcome,
                iterations: r.iterations,
                elapsed: r.elapsed,
                result_hash: hash_f64s(&restored),
                reached: None,
                num_components: None,
            }
        }
    }
}

/// The `sleep` diagnostic primitive: occupies a worker for
/// `duration_ms`, polling the cancel flag and deadline every few
/// milliseconds, so tests can fill the pool and the queue
/// deterministically without depending on graph runtimes. Each poll
/// also ticks the watchdog heartbeat: a long sleep is slow, not hung.
fn run_sleep(
    req: &Request,
    deadline: Option<Instant>,
    cancel: &Arc<AtomicBool>,
    heartbeat: Option<&Arc<Heartbeat>>,
) -> JobVerdict {
    let start = Instant::now();
    let budget = Duration::from_millis(req.duration_ms);
    let mut outcome = RunOutcome::Converged;
    while start.elapsed() < budget {
        if let Some(hb) = heartbeat {
            hb.tick();
        }
        // ORDERING: Acquire — pairs with the drain sequence's (or the
        // watchdog's) Release store; sleep jobs stop promptly.
        if cancel.load(std::sync::atomic::Ordering::Acquire) {
            outcome = RunOutcome::Cancelled;
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            outcome = RunOutcome::TimedOut;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let summary = RunSummary {
        outcome,
        iterations: 0,
        elapsed: start.elapsed(),
        result_hash: 0,
        reached: None,
        num_components: None,
    };
    JobVerdict {
        response: respond_result(req, &summary, None, false, None),
        status: if outcome.is_converged() { JobStatus::Ok } else { JobStatus::Partial },
        breaker_failure: false,
        deadline_missed: outcome == RunOutcome::TimedOut,
        checkpointed: false,
        degrades: 0,
    }
}

fn failed_verdict(req: &Request, code: ErrorCode, message: &str, breaker: bool) -> JobVerdict {
    JobVerdict {
        response: error_response(&req.id, code, message, None),
        status: JobStatus::Failed,
        breaker_failure: breaker,
        deadline_missed: false,
        checkpointed: false,
        degrades: 0,
    }
}

/// Runs one admitted request to a verdict. `deadline` is the absolute
/// instant derived from `deadline_ms` at arrival; `seq` disambiguates
/// checkpoint directories for requests without an id.
pub fn run_job(
    env: &JobEnv<'_>,
    req: &Request,
    deadline: Option<Instant>,
    seq: u64,
) -> JobVerdict {
    // Admission control, part two: a queue wait may have consumed the
    // whole budget — reject instead of burning a worker on a result the
    // client has already given up on.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return JobVerdict {
            response: error_response(
                &req.id,
                ErrorCode::DeadlineExpired,
                "deadline expired while queued",
                None,
            ),
            status: JobStatus::Rejected,
            breaker_failure: false,
            deadline_missed: false,
            checkpointed: false,
            degrades: 0,
        };
    }
    if req.primitive == "sleep" {
        return run_sleep(req, deadline, env.cancel, env.heartbeat);
    }

    let mut policy = RunPolicy::unbounded().cancel_flag(env.cancel.clone());
    if let Some(cap) = req.max_iters {
        policy = policy.max_iterations(cap);
    }
    if let Some(d) = deadline {
        policy = policy.wall_clock_budget(d.saturating_duration_since(Instant::now()));
    }

    let injector = match &req.inject {
        Some(spec) => match FaultPlan::parse(spec, req.fault_seed) {
            Ok(plan) => Some(Arc::new(FaultInjector::new(plan))),
            Err(e) => {
                return JobVerdict {
                    response: error_response(
                        &req.id,
                        ErrorCode::BadRequest,
                        &format!("inject: {e}"),
                        None,
                    ),
                    status: JobStatus::Rejected,
                    breaker_failure: false,
                    deadline_missed: false,
                    checkpointed: false,
                    degrades: 0,
                }
            }
        },
        None => env.injector.cloned(),
    };

    let ckpt_policy = req.checkpoint.then(|| {
        CheckpointPolicy::new(
            req.checkpoint_every,
            request_dir(env.checkpoint_root, &req.id, seq),
        )
    });

    let mut ctx = Context::new(env.graph)
        .with_reverse(env.graph)
        .with_shared_pool(env.pool.clone())
        .with_policy(policy);
    if let Some(t) = env.serial_threshold {
        ctx = ctx.with_config(EngineConfig::new().with_serial_threshold(t));
    }
    if let Some(inj) = injector {
        ctx = ctx.with_faults(inj);
    }
    if let Some(hb) = env.heartbeat {
        ctx = ctx.with_heartbeat(Arc::clone(hb));
    }
    if let Some(p) = &ckpt_policy {
        ctx = ctx.with_checkpoints(p.clone());
    }

    let (summary, resumed) = if let Some(path) = &req.resume {
        let ckpt = match Checkpoint::load(Path::new(path)) {
            Ok(c) => c,
            Err(e) => {
                return failed_verdict(
                    req,
                    ErrorCode::ResumeFailed,
                    &format!("{path}: {e}"),
                    false,
                )
            }
        };
        if ckpt.primitive() != req.primitive {
            return failed_verdict(
                req,
                ErrorCode::ResumeFailed,
                &format!(
                    "snapshot is for {:?}, request names {:?}",
                    ckpt.primitive(),
                    req.primitive
                ),
                false,
            );
        }
        match algos::recover::resume(&ctx, &ckpt) {
            Ok(run) => (summarize_resumed(&run, env.relab), true),
            Err(e) => {
                return failed_verdict(req, ErrorCode::ResumeFailed, &e.to_string(), false)
            }
        }
    } else {
        // requests name original vertex ids; a reordered server
        // translates the source in and maps results back at the hash
        let src = env.relab.map_or(req.src, |r| r.new_of_old(req.src));
        let summary = match req.primitive.as_str() {
            "bfs" => {
                let r = algos::bfs(&ctx, src, algos::BfsOptions::default());
                RunSummary {
                    outcome: r.outcome,
                    iterations: r.iterations,
                    elapsed: r.elapsed,
                    result_hash: hash_restored_u32(env.relab, &r.labels),
                    reached: Some(count_reached(&r.labels)),
                    num_components: None,
                }
            }
            "sssp" => {
                let r = algos::sssp(&ctx, src, algos::SsspOptions::default());
                RunSummary {
                    outcome: r.outcome,
                    iterations: r.iterations,
                    elapsed: r.elapsed,
                    result_hash: hash_restored_u32(env.relab, &r.dist),
                    reached: Some(count_reached(&r.dist)),
                    num_components: None,
                }
            }
            "bc" => {
                let r = algos::bc(&ctx, src, algos::BcOptions::default());
                RunSummary {
                    outcome: r.outcome,
                    iterations: r.iterations,
                    elapsed: r.elapsed,
                    result_hash: hash_restored_f64(env.relab, &r.bc_values),
                    reached: None,
                    num_components: None,
                }
            }
            "cc" => {
                let r = algos::cc(&ctx);
                RunSummary {
                    outcome: r.outcome,
                    iterations: r.iterations,
                    elapsed: r.elapsed,
                    result_hash: hash_restored_ids(env.relab, &r.labels),
                    reached: None,
                    num_components: Some(r.num_components as u64),
                }
            }
            "pagerank" => {
                let opts = match req.epsilon {
                    Some(eps) => algos::PrOptions { epsilon: eps, ..Default::default() },
                    None => algos::PrOptions::default(),
                };
                let r = algos::pagerank(&ctx, opts);
                RunSummary {
                    outcome: r.outcome,
                    iterations: r.iterations,
                    elapsed: r.elapsed,
                    result_hash: hash_restored_f64(env.relab, &r.scores),
                    reached: None,
                    num_components: None,
                }
            }
            other => {
                return JobVerdict {
                    response: error_response(
                        &req.id,
                        ErrorCode::UnknownPrimitive,
                        &format!("cannot serve {other:?}"),
                        None,
                    ),
                    status: JobStatus::Rejected,
                    breaker_failure: false,
                    deadline_missed: false,
                    checkpointed: false,
                    degrades: 0,
                }
            }
        };
        (summary, false)
    };

    if summary.outcome == RunOutcome::Failed {
        let failure = ctx.take_failure();
        // A budget denial is a resource condition, not a code bug: it
        // answers `over-budget` (retryable once pressure clears) and
        // does not feed the primitive's circuit breaker.
        let (code, breaker) = match &failure {
            Some(GunrockError::BudgetExceeded { .. }) => (ErrorCode::OverBudget, false),
            _ => (ErrorCode::OperatorPanic, true),
        };
        let message =
            failure.map(|e| e.to_string()).unwrap_or_else(|| "operator failed".to_string());
        return JobVerdict {
            response: error_response(&req.id, code, &message, None),
            status: JobStatus::Failed,
            breaker_failure: breaker,
            deadline_missed: false,
            checkpointed: false,
            degrades: ctx.degrade_count(),
        };
    }

    // A guard-tripped run leaves an exit snapshot behind when the client
    // asked for one; report its path so the client can resume.
    let checkpoint = ckpt_policy
        .as_ref()
        .map(|p| p.path(&req.primitive))
        .filter(|path| !summary.outcome.is_converged() && path.exists());
    JobVerdict {
        response: respond_result(req, &summary, checkpoint.as_deref(), resumed, None),
        status: if summary.outcome.is_converged() { JobStatus::Ok } else { JobStatus::Partial },
        breaker_failure: false,
        deadline_missed: summary.outcome == RunOutcome::TimedOut,
        checkpointed: checkpoint.is_some(),
        degrades: ctx.degrade_count(),
    }
}

/// How a lane-packed batch ended: one verdict per member (aligned with
/// the input slice) plus whether the shared sweep had to fall back to
/// per-lane isolated re-runs.
pub struct BatchOutcome {
    /// Per-member verdicts, in member order.
    pub verdicts: Vec<JobVerdict>,
    /// The batched run failed (a poisoned lane) and every live member
    /// was re-run in its own isolated context instead.
    pub fell_back: bool,
}

impl BatchOutcome {
    /// The last-line-of-defense verdict when batch dispatch itself
    /// panicked outside any request context.
    pub fn internal(members: &[BatchMember]) -> Self {
        BatchOutcome {
            verdicts: members
                .iter()
                .map(|m| JobVerdict {
                    response: error_response(
                        &m.req.id,
                        ErrorCode::Internal,
                        "batch dispatch panicked",
                        None,
                    ),
                    status: JobStatus::Failed,
                    breaker_failure: true,
                    deadline_missed: false,
                    checkpointed: false,
                    degrades: 0,
                })
                .collect(),
            fell_back: false,
        }
    }
}

/// Runs one coalesced batch of point BFS queries as a single lane-packed
/// MS-BFS traversal, de-multiplexing per-lane depths back into one
/// response per member. Members whose deadline expired while the window
/// was open (or whose `inject` spec is malformed) are answered without
/// costing the batch anything. The batch context adopts the earliest
/// live deadline — members share a policy class, so no member's budget
/// is cut by more than half (see `coalesce::group_key`).
///
/// **Per-lane panic isolation:** a poisoned lane poisons the *shared*
/// context, so a failed sweep says nothing about which member was at
/// fault. The fallback re-runs every live member through [`run_job`] in
/// its own context — the faulty lane fails with its structured
/// `operator-panic`, and its batch-mates still converge.
pub fn run_batch(env: &JobEnv<'_>, members: &[BatchMember], seq: u64) -> BatchOutcome {
    let now = Instant::now();
    let mut verdicts: Vec<Option<JobVerdict>> = members.iter().map(|_| None).collect();
    let mut live: Vec<usize> = Vec::with_capacity(members.len());
    for (i, m) in members.iter().enumerate() {
        if m.deadline.is_some_and(|d| now >= d) {
            verdicts[i] = Some(JobVerdict {
                response: error_response(
                    &m.req.id,
                    ErrorCode::DeadlineExpired,
                    "deadline expired in the batching window",
                    None,
                ),
                status: JobStatus::Rejected,
                breaker_failure: false,
                deadline_missed: false,
                checkpointed: false,
                degrades: 0,
            });
        } else if m.req.inject.as_deref().is_some_and(|s| FaultPlan::parse(s, 0).is_err()) {
            verdicts[i] = Some(JobVerdict {
                response: error_response(
                    &m.req.id,
                    ErrorCode::BadRequest,
                    "inject: unparseable fault spec",
                    None,
                ),
                status: JobStatus::Rejected,
                breaker_failure: false,
                deadline_missed: false,
                checkpointed: false,
                degrades: 0,
            });
        } else {
            live.push(i);
        }
    }
    let finish = |verdicts: Vec<Option<JobVerdict>>, fell_back: bool| BatchOutcome {
        // LINT-ALLOW(panic): every index is either rejected above or in
        // `live`, and both paths below fill every live slot.
        verdicts: verdicts.into_iter().map(|v| v.unwrap()).collect(),
        fell_back,
    };
    if live.is_empty() {
        return finish(verdicts, false);
    }

    let mut policy = RunPolicy::unbounded().cancel_flag(env.cancel.clone());
    if let Some(d) = live.iter().filter_map(|&i| members[i].deadline).min() {
        policy = policy.wall_clock_budget(d.saturating_duration_since(Instant::now()));
    }
    // The shared sweep carries the first live member's fault plan (or
    // the server-wide one): an injected fault fails the whole batch
    // forward into the per-lane fallback, which is the isolation story.
    let injector = live
        .iter()
        .find_map(|&i| {
            let m = &members[i];
            let spec = m.req.inject.as_deref()?;
            FaultPlan::parse(spec, m.req.fault_seed)
                .ok()
                .map(|plan| Arc::new(FaultInjector::new(plan)))
        })
        .or_else(|| env.injector.cloned());

    let mut ctx = Context::new(env.graph)
        .with_reverse(env.graph)
        .with_shared_pool(env.pool.clone())
        .with_policy(policy);
    if let Some(t) = env.serial_threshold {
        ctx = ctx.with_config(EngineConfig::new().with_serial_threshold(t));
    }
    if let Some(inj) = injector {
        ctx = ctx.with_faults(inj);
    }
    if let Some(hb) = env.heartbeat {
        ctx = ctx.with_heartbeat(Arc::clone(hb));
    }

    let sources: Vec<u32> = live
        .iter()
        .map(|&i| {
            let s = members[i].req.src;
            env.relab.map_or(s, |r| r.new_of_old(s))
        })
        .collect();
    let r = algos::msbfs(&ctx, &sources);

    if r.outcome == RunOutcome::Failed {
        drop(ctx);
        for &i in &live {
            verdicts[i] = Some(run_job(env, &members[i].req, members[i].deadline, seq));
        }
        return finish(verdicts, true);
    }

    let lanes = live.len() as u64;
    for (lane, &i) in live.iter().enumerate() {
        let depths = r.lane_depths(lane);
        let summary = RunSummary {
            outcome: r.outcome,
            iterations: r.iterations,
            elapsed: r.elapsed,
            result_hash: hash_restored_u32(env.relab, depths),
            reached: Some(count_reached(depths)),
            num_components: None,
        };
        verdicts[i] = Some(JobVerdict {
            response: respond_result(&members[i].req, &summary, None, false, Some(lanes)),
            status: if r.outcome.is_converged() { JobStatus::Ok } else { JobStatus::Partial },
            breaker_failure: false,
            deadline_missed: r.outcome == RunOutcome::TimedOut,
            checkpointed: false,
            // the shared context's degrade rungs are batch-wide; charge
            // them once (to the first lane) so metrics do not multiply
            degrades: if lane == 0 { ctx.degrade_count() } else { 0 },
        });
    }
    finish(verdicts, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    fn env_fixture<'a>(
        g: &'a Csr,
        cancel: &'a Arc<AtomicBool>,
        pool: &'a Arc<BufferPool>,
    ) -> JobEnv<'a> {
        JobEnv {
            graph: g,
            relab: None,
            cancel,
            heartbeat: None,
            pool,
            injector: None,
            serial_threshold: None,
            checkpoint_root: Path::new("."),
        }
    }

    fn req(primitive: &str) -> Request {
        crate::protocol::parse_request(&format!("{{\"primitive\":{primitive:?}}}")).unwrap()
    }

    #[test]
    fn bfs_job_converges_and_hashes_deterministically() {
        let g = GraphBuilder::new().build(Coo::from_edges(8, &[(0, 1), (1, 2), (2, 3)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let v1 = run_job(&env, &req("bfs"), None, 0);
        let v2 = run_job(&env, &req("bfs"), None, 1);
        assert_eq!(v1.status, JobStatus::Ok);
        assert!(!v1.breaker_failure);
        let hash = |resp: &str| {
            gunrock_engine::json::JsonValue::parse(resp)
                .unwrap()
                .get("result_hash")
                .and_then(|h| h.as_str().map(str::to_string))
                .unwrap()
        };
        assert_eq!(
            hash(&v1.response),
            hash(&v2.response),
            "same request: identical result hash"
        );
        assert!(v1.response.contains("\"reached\":4"));
    }

    #[test]
    fn reordered_server_reports_identical_result_hashes() {
        // a hub-heavy little graph so degree_descending is a real shuffle
        let g = GraphBuilder::new()
            .random_weights(1, 9, 7)
            .build(Coo::from_edges(8, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (1, 6)]));
        let r = gunrock_graph::reorder::degree_descending(&g);
        let gr = r.apply(&g);
        assert_ne!(g.col_indices(), gr.col_indices(), "relabeling must actually move ids");
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let plain = env_fixture(&g, &drain, &pool);
        let mut reordered = env_fixture(&gr, &drain, &pool);
        reordered.relab = Some(&r);
        let field = |resp: &str, key: &str| {
            let v = gunrock_engine::json::JsonValue::parse(resp).unwrap();
            let f = v.get(key);
            f.and_then(|f| f.as_str().map(str::to_string))
                .or_else(|| f.and_then(|f| f.as_u64()).map(|n| n.to_string()))
                .unwrap_or_default()
        };
        // integer results (depths, distances) are order-independent;
        // pagerank sums floats in a different order under relabeling, so
        // its hashes legitimately differ
        for prim in ["bfs", "sssp"] {
            let a = run_job(&plain, &req(prim), None, 0);
            let b = run_job(&reordered, &req(prim), None, 1);
            assert_eq!(a.status, JobStatus::Ok, "{prim}");
            assert_eq!(b.status, JobStatus::Ok, "{prim}");
            assert_eq!(
                field(&a.response, "result_hash"),
                field(&b.response, "result_hash"),
                "{prim}: restored results must be bit-identical to the plain server's"
            );
            assert_eq!(field(&a.response, "reached"), field(&b.response, "reached"), "{prim}");
        }
        // cc representatives depend on id order, but the partition size
        // must agree
        let a = run_job(&plain, &req("cc"), None, 0);
        let b = run_job(&reordered, &req("cc"), None, 1);
        assert_eq!(field(&a.response, "num_components"), field(&b.response, "num_components"));
    }

    #[test]
    fn injected_panic_is_a_breaker_failure() {
        let g = GraphBuilder::new().build(Coo::from_edges(8, &[(0, 1), (1, 2)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let mut r = req("bfs");
        r.inject = Some("panic=1.0".to_string());
        let v = run_job(&env, &r, None, 0);
        assert_eq!(v.status, JobStatus::Failed);
        assert!(v.breaker_failure);
        assert!(v.response.contains("operator-panic"));
    }

    #[test]
    fn budget_denial_answers_over_budget_without_tripping_the_breaker() {
        let g = GraphBuilder::new().build(Coo::from_edges(8, &[(0, 1), (1, 2), (2, 3)]));
        let cancel = Arc::new(AtomicBool::new(false));
        // a 4-byte budget cannot fit any pooled checkout or even the
        // lean estimate, so the run fails with a structured denial
        let budget = Arc::new(gunrock_engine::budget::MemoryBudget::new(4));
        let pool = Arc::new(BufferPool::new().with_budget(Arc::clone(&budget)));
        let env = env_fixture(&g, &cancel, &pool);
        let v = run_job(&env, &req("bfs"), None, 0);
        assert_eq!(v.status, JobStatus::Failed);
        assert!(!v.breaker_failure, "budget pressure must not open the breaker");
        assert!(v.response.contains("over-budget"), "{}", v.response);
    }

    #[test]
    fn expired_deadline_is_rejected_before_running() {
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let v = run_job(&env, &req("bfs"), Some(Instant::now() - Duration::from_millis(1)), 0);
        assert_eq!(v.status, JobStatus::Rejected);
        assert!(v.response.contains("deadline-expired"));
    }

    #[test]
    fn request_dirs_are_isolated_and_sanitized() {
        let root = Path::new("/tmp/ckpts");
        assert_eq!(request_dir(root, "job-7", 0), root.join("job-7"));
        assert_eq!(request_dir(root, "../evil", 3), root.join("evil"));
        assert_eq!(request_dir(root, "", 3), root.join("req-3"));
        assert_ne!(request_dir(root, "a", 0), request_dir(root, "b", 0));
    }

    fn batch_member(
        line: &str,
        deadline: Option<Instant>,
    ) -> (BatchMember, std::sync::mpsc::Receiver<String>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let req = crate::protocol::parse_request(line).unwrap();
        (BatchMember { req, deadline, reply: tx }, rx)
    }

    #[test]
    fn batch_demuxes_per_lane_results_identical_to_solo_runs() {
        let g = GraphBuilder::new()
            .build(Coo::from_edges(16, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let lines = [
            r#"{"id":"a","primitive":"bfs","src":0}"#,
            r#"{"id":"b","primitive":"bfs","src":4}"#,
            r#"{"id":"c","primitive":"bfs","src":2}"#,
        ];
        let members: Vec<BatchMember> = lines.iter().map(|l| batch_member(l, None).0).collect();
        let out = run_batch(&env, &members, 0);
        assert!(!out.fell_back);
        assert_eq!(out.verdicts.len(), 3);
        let hash = |resp: &str| {
            gunrock_engine::json::JsonValue::parse(resp)
                .unwrap()
                .get("result_hash")
                .and_then(|h| h.as_str().map(str::to_string))
                .unwrap()
        };
        for (line, v) in lines.iter().zip(&out.verdicts) {
            assert_eq!(v.status, JobStatus::Ok, "{line}");
            assert!(v.response.contains("\"batched\":true"), "{}", v.response);
            assert!(v.response.contains("\"batch_lanes\":3"), "{}", v.response);
            // per-lane hash must be bit-identical to the solo job's
            let solo = run_job(&env, &crate::protocol::parse_request(line).unwrap(), None, 9);
            assert_eq!(hash(&v.response), hash(&solo.response), "{line}");
        }
    }

    #[test]
    fn expired_member_is_rejected_without_failing_batch_mates() {
        let g = GraphBuilder::new().build(Coo::from_edges(8, &[(0, 1), (1, 2)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let (dead, _rx1) = batch_member(
            r#"{"id":"late","primitive":"bfs","src":0,"deadline_ms":5}"#,
            Some(Instant::now() - Duration::from_millis(1)),
        );
        let (live, _rx2) = batch_member(r#"{"id":"ok","primitive":"bfs","src":1}"#, None);
        let out = run_batch(&env, &[dead, live], 0);
        assert_eq!(out.verdicts[0].status, JobStatus::Rejected);
        assert!(out.verdicts[0].response.contains("deadline-expired"));
        assert_eq!(out.verdicts[1].status, JobStatus::Ok);
        assert!(out.verdicts[1].response.contains("\"batch_lanes\":1"));
    }

    #[test]
    fn poisoned_lane_falls_back_and_batch_mates_still_answer() {
        let g = GraphBuilder::new().build(Coo::from_edges(8, &[(0, 1), (1, 2), (2, 3)]));
        let drain = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufferPool::new());
        let env = env_fixture(&g, &drain, &pool);
        let (poisoned, _rx1) = batch_member(
            r#"{"id":"bad","primitive":"bfs","src":0,"inject":"panic=1.0"}"#,
            None,
        );
        let (clean, _rx2) = batch_member(r#"{"id":"good","primitive":"bfs","src":1}"#, None);
        let out = run_batch(&env, &[poisoned, clean], 0);
        assert!(out.fell_back, "a poisoned shared sweep must re-run lanes in isolation");
        assert_eq!(out.verdicts[0].status, JobStatus::Failed);
        assert!(out.verdicts[0].breaker_failure);
        assert!(
            out.verdicts[0].response.contains("operator-panic"),
            "{}",
            out.verdicts[0].response
        );
        assert_eq!(out.verdicts[1].status, JobStatus::Ok, "{}", out.verdicts[1].response);
    }

    #[test]
    fn fnv_hashes_distinguish_bitwise_changes() {
        assert_eq!(hash_u32s(&[1, 2, 3]), hash_u32s(&[1, 2, 3]));
        assert_ne!(hash_u32s(&[1, 2, 3]), hash_u32s(&[1, 2, 4]));
        assert_ne!(hash_f64s(&[0.0]), hash_f64s(&[-0.0]), "bit pattern, not numeric equality");
    }
}
