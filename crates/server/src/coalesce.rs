//! Query coalescing: a short batching window in front of the worker
//! pool that merges compatible BFS point queries into one lane-packed
//! [`gunrock_algos::msbfs`] job.
//!
//! The serving cost of a point BFS is dominated by per-query overhead —
//! admission, a queue slot, a context, and a full traversal that scans
//! each edge for exactly one source. MS-BFS amortizes all of it: up to
//! [`LANES`] queries ride one 64-bit lane word per vertex, one memory
//! estimate, one queue slot, and one edge sweep per level. This module
//! owns the *window* half of the story; `server.rs` owns dispatch (the
//! queue push, the single per-batch admission charge, the metrics) and
//! `jobs.rs` owns execution and per-lane result de-multiplexing.
//!
//! A request is *batchable* when it is a plain point BFS: no `resume`
//! snapshot, no checkpoint request, no iteration cap. Batchable
//! requests are grouped by **policy class** — deadline requests only
//! merge with deadlines in the same power-of-two bucket (the batch
//! adopts the earliest member deadline, so a 10 s query must never be
//! yoked to a 10 ms one) — and a group is sealed when it fills
//! `lanes` members or its window expires, whichever comes first.
//! Per-request fault injection stays batchable on purpose: a poisoned
//! lane fails the shared sweep, and the executor re-runs each lane in
//! its own isolated context so batch-mates still answer (see
//! `jobs::run_batch`).

use crate::protocol::Request;
use gunrock_engine::lanes::LANES;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One query waiting in (or sealed out of) a batching window.
pub struct BatchMember {
    /// The parsed request (always a batchable BFS).
    pub req: Request,
    /// Absolute deadline derived from `deadline_ms` at arrival.
    pub deadline: Option<Instant>,
    /// The connection thread blocked on this query's answer.
    pub reply: mpsc::Sender<String>,
}

/// Why a batch left the window, for the flush-reason metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The window filled to the lane cap.
    Full,
    /// The batching window expired with the batch half-filled.
    Window,
    /// The drain sequence flushed a half-filled window.
    Drain,
}

/// What [`Coalescer::offer`] did with a member.
pub enum Offer {
    /// Joined an open window; the flusher (or a later arrival) seals it.
    Pending,
    /// The member filled its window to the lane cap — dispatch now.
    Sealed(Vec<BatchMember>),
    /// The coalescer is closed (drain); the member is handed back so
    /// the caller can answer `shutting-down`.
    Closed(BatchMember),
}

/// True when a request can ride a lane of a batched MS-BFS job instead
/// of a solo traversal.
pub fn batchable(req: &Request) -> bool {
    req.primitive == "bfs" && req.resume.is_none() && !req.checkpoint && req.max_iters.is_none()
}

/// The policy-class key: deadline-free queries form one class; deadline
/// queries merge only within the same power-of-two millisecond bucket,
/// bounding how much budget the batch's adopted minimum can steal from
/// any member (at most 2x).
fn group_key(req: &Request) -> u64 {
    match req.deadline_ms {
        None => 0,
        Some(ms) => u64::from(64 - ms.leading_zeros()) + 1,
    }
}

struct OpenBatch {
    members: Vec<BatchMember>,
    opened: Instant,
}

struct Pending {
    /// Set by [`Coalescer::close`]; late offers bounce instead of
    /// stranding a member in a window nobody will ever flush.
    closed: bool,
    groups: HashMap<u64, OpenBatch>,
}

/// The batching windows, one open batch per policy class.
pub struct Coalescer {
    window: Duration,
    lanes: usize,
    pending: Mutex<Pending>,
}

impl Coalescer {
    /// A coalescer sealing batches at `lanes` members (clamped to
    /// 1..=[`LANES`]) or `window` of age, whichever comes first.
    pub fn new(window: Duration, lanes: usize) -> Self {
        Coalescer {
            window,
            lanes: lanes.clamp(1, LANES),
            pending: Mutex::new(Pending { closed: false, groups: HashMap::new() }),
        }
    }

    /// The configured lane cap per batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The configured window duration.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// How often the flusher thread should sweep for expired windows: a
    /// quarter window keeps worst-case added latency near `window`
    /// without busy-spinning.
    pub fn tick(&self) -> Duration {
        (self.window / 4).max(Duration::from_millis(1))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Pending> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds one member to its policy class's open window.
    pub fn offer(&self, member: BatchMember) -> Offer {
        let key = group_key(&member.req);
        let mut p = self.lock();
        if p.closed {
            return Offer::Closed(member);
        }
        let open = p
            .groups
            .entry(key)
            .or_insert_with(|| OpenBatch { members: Vec::new(), opened: Instant::now() });
        open.members.push(member);
        if open.members.len() >= self.lanes {
            // LINT-ALLOW(panic): the entry was just inserted above.
            let open = p.groups.remove(&key).unwrap();
            Offer::Sealed(open.members)
        } else {
            Offer::Pending
        }
    }

    /// Removes and returns every window older than the configured
    /// duration (the flusher thread's sweep).
    pub fn take_expired(&self) -> Vec<Vec<BatchMember>> {
        let now = Instant::now();
        let mut p = self.lock();
        let expired: Vec<u64> = p
            .groups
            .iter()
            .filter(|(_, b)| now.saturating_duration_since(b.opened) >= self.window)
            .map(|(&k, _)| k)
            .collect();
        expired.into_iter().filter_map(|k| p.groups.remove(&k)).map(|b| b.members).collect()
    }

    /// Closes the coalescer (drain): returns every half-filled window
    /// for a final dispatch and bounces all later offers.
    pub fn close(&self) -> Vec<Vec<BatchMember>> {
        let mut p = self.lock();
        p.closed = true;
        p.groups.drain().map(|(_, b)| b.members).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn member(line: &str) -> BatchMember {
        let (tx, _rx) = mpsc::channel();
        BatchMember { req: parse_request(line).unwrap(), deadline: None, reply: tx }
    }

    #[test]
    fn only_plain_point_bfs_is_batchable() {
        assert!(batchable(&parse_request(r#"{"primitive":"bfs","src":3}"#).unwrap()));
        assert!(batchable(
            &parse_request(r#"{"primitive":"bfs","inject":"panic=1.0"}"#).unwrap()
        ));
        assert!(batchable(&parse_request(r#"{"primitive":"bfs","deadline_ms":500}"#).unwrap()));
        for not in [
            r#"{"primitive":"sssp"}"#,
            r#"{"primitive":"bfs","checkpoint":true}"#,
            r#"{"primitive":"bfs","resume":"/tmp/x.ckpt"}"#,
            r#"{"primitive":"bfs","max_iters":3}"#,
        ] {
            assert!(!batchable(&parse_request(not).unwrap()), "{not}");
        }
    }

    #[test]
    fn capacity_seals_a_window() {
        let c = Coalescer::new(Duration::from_secs(60), 3);
        assert!(matches!(c.offer(member(r#"{"primitive":"bfs","src":0}"#)), Offer::Pending));
        assert!(matches!(c.offer(member(r#"{"primitive":"bfs","src":1}"#)), Offer::Pending));
        match c.offer(member(r#"{"primitive":"bfs","src":2}"#)) {
            Offer::Sealed(members) => {
                assert_eq!(members.len(), 3);
                let srcs: Vec<u32> = members.iter().map(|m| m.req.src).collect();
                assert_eq!(srcs, vec![0, 1, 2]);
            }
            _ => panic!("third member must seal a 3-lane window"),
        }
        assert!(c.take_expired().is_empty(), "sealed windows leave nothing behind");
    }

    #[test]
    fn deadline_classes_do_not_merge() {
        let c = Coalescer::new(Duration::from_secs(60), 2);
        // no-deadline, ~16ms bucket, ~16s bucket: three distinct classes
        assert!(matches!(c.offer(member(r#"{"primitive":"bfs"}"#)), Offer::Pending));
        assert!(matches!(
            c.offer(member(r#"{"primitive":"bfs","deadline_ms":20}"#)),
            Offer::Pending
        ));
        assert!(matches!(
            c.offer(member(r#"{"primitive":"bfs","deadline_ms":16000}"#)),
            Offer::Pending
        ));
        // same bucket as 20ms: seals that class only
        assert!(matches!(
            c.offer(member(r#"{"primitive":"bfs","deadline_ms":25}"#)),
            Offer::Sealed(_)
        ));
        // the other two classes are still open, one member each
        let left = c.close();
        assert_eq!(left.len(), 2);
        assert!(left.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn window_age_expires_half_filled_batches() {
        let c = Coalescer::new(Duration::from_millis(5), 64);
        assert!(matches!(c.offer(member(r#"{"primitive":"bfs","src":7}"#)), Offer::Pending));
        assert!(c.take_expired().is_empty(), "window is younger than 5ms");
        std::thread::sleep(Duration::from_millis(8));
        let flushed = c.take_expired();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].len(), 1);
        assert_eq!(flushed[0][0].req.src, 7);
    }

    #[test]
    fn close_flushes_and_bounces_late_offers() {
        let c = Coalescer::new(Duration::from_secs(60), 64);
        assert!(matches!(c.offer(member(r#"{"primitive":"bfs"}"#)), Offer::Pending));
        let flushed = c.close();
        assert_eq!(flushed.len(), 1);
        match c.offer(member(r#"{"primitive":"bfs","src":9}"#)) {
            Offer::Closed(m) => assert_eq!(m.req.src, 9),
            _ => panic!("a closed coalescer must bounce, not strand, late members"),
        }
    }

    #[test]
    fn lane_cap_is_clamped_to_the_word_width() {
        assert_eq!(Coalescer::new(Duration::ZERO, 0).lanes(), 1);
        assert_eq!(Coalescer::new(Duration::ZERO, 500).lanes(), LANES);
        let c = Coalescer::new(Duration::from_millis(8), 64);
        assert_eq!(c.tick(), Duration::from_millis(2));
        assert!(Coalescer::new(Duration::ZERO, 1).tick() >= Duration::from_millis(1));
    }
}
