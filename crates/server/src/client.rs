//! A minimal blocking client for the line-delimited protocol, shared by
//! `gunrock query` and the resilience tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a `gunrock-serve` instance; requests and responses
/// alternate line by line.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (`host:port`) with a read timeout: a client
    /// never hangs forever, even against a wedged server.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        Ok(Client { stream, pending: Vec::new() })
    }

    /// Sends one request line and waits for its response line.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|_| self.stream.write_all(b"\n"))
            .and_then(|_| self.stream.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        self.read_line()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return String::from_utf8(line)
                    .map(|s| s.trim().to_string())
                    .map_err(|e| format!("non-UTF8 response: {e}"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(format!("receive failed: {e}")),
            }
        }
    }
}

/// Convenience: one request over a fresh connection.
pub fn query_once(addr: &str, line: &str, timeout: Duration) -> Result<String, String> {
    Client::connect(addr, timeout)?.request(line)
}
