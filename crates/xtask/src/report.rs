//! Human-readable and JSON (`gunrock-lint/v1`) output for lint runs.

use crate::passes::{Finding, Pass};

/// Renders findings the way compilers do — `file:line: pass: message` —
/// plus a per-pass summary line.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.pass.name(),
            f.message,
            f.snippet
        ));
    }
    let count = |p: Pass| findings.iter().filter(|f| f.pass == p).count();
    out.push_str(&format!(
        "gunrock-lint: {} file(s) scanned, {} finding(s) \
         (safety {}, panic {}, ordering {}, cast {}, alloc {})\n",
        files_scanned,
        findings.len(),
        count(Pass::Safety),
        count(Pass::Panic),
        count(Pass::Ordering),
        count(Pass::Cast),
        count(Pass::Alloc),
    ));
    out
}

/// Serializes findings as a `gunrock-lint/v1` JSON document. Hand-rolled
/// like the rest of the crate — the schema is flat enough that an
/// escaper and format strings cover it.
pub fn render_json(findings: &[Finding], files_scanned: usize, exit_code: i32) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"gunrock-lint/v1\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"exit_code\": {exit_code},\n"));
    let count = |p: Pass| findings.iter().filter(|f| f.pass == p).count();
    out.push_str(&format!(
        "  \"counts\": {{\"safety\": {}, \"panic\": {}, \"ordering\": {}, \"cast\": {}, \
         \"alloc\": {}}},\n",
        count(Pass::Safety),
        count(Pass::Panic),
        count(Pass::Ordering),
        count(Pass::Cast),
        count(Pass::Alloc),
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\"}}",
            f.pass.name(),
            escape(&f.file),
            f.line,
            escape(&f.message),
            escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Computes the process exit code: the OR of the exit bits of every pass
/// with at least one finding (safety=1, panic=2, ordering=4, cast=8,
/// alloc=16).
pub fn exit_code(findings: &[Finding]) -> i32 {
    findings.iter().fold(0, |acc, f| acc | f.pass.exit_bit())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                pass: Pass::Safety,
                file: "crates/engine/src/x.rs".into(),
                line: 12,
                message: "unsafe block without a `// SAFETY:` comment".into(),
                snippet: "unsafe { \"quoted\" }".into(),
            },
            Finding {
                pass: Pass::Cast,
                file: "crates/engine/src/scan.rs".into(),
                line: 3,
                message: "truncating cast".into(),
                snippet: "x as u32".into(),
            },
        ]
    }

    #[test]
    fn exit_code_is_a_bitmask_of_failing_passes() {
        assert_eq!(exit_code(&[]), 0);
        assert_eq!(exit_code(&sample()), 1 | 8);
    }

    #[test]
    fn human_output_has_file_line_and_summary() {
        let text = render_human(&sample(), 7);
        assert!(text.contains("crates/engine/src/x.rs:12: [safety]"));
        assert!(text.contains("7 file(s) scanned, 2 finding(s)"));
        assert!(text.contains("safety 1, panic 0, ordering 0, cast 1, alloc 0"));
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let json = render_json(&sample(), 7, 9);
        assert!(json.contains("\"schema\": \"gunrock-lint/v1\""));
        assert!(json.contains("\"exit_code\": 9"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 12"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&[], 0, 0);
        assert!(json.contains("\"findings\": []"));
    }
}
