//! Human-readable and JSON output shared by `gunrock-lint`
//! (`gunrock-lint/v1`) and `gunrock-audit` (`gunrock-audit/v1`).
//!
//! Both tools produce findings with the same shape — a pass name, an
//! exit bit, a file:line anchor, a message and a snippet — so the
//! renderer is generic over the [`Diagnostic`] trait and each tool only
//! supplies its tool name, schema tag, and pass-name list for the
//! summary counts.

use crate::passes::Finding;

/// A renderable finding: implemented by the lint passes' [`Finding`] and
/// by the audit passes' `AuditFinding` so both route through one
/// renderer.
pub trait Diagnostic {
    fn pass_name(&self) -> &'static str;
    fn exit_bit(&self) -> i32;
    fn file(&self) -> &str;
    fn line(&self) -> usize;
    fn message(&self) -> &str;
    fn snippet(&self) -> &str;
}

impl Diagnostic for Finding {
    fn pass_name(&self) -> &'static str {
        self.pass.name()
    }
    fn exit_bit(&self) -> i32 {
        self.pass.exit_bit()
    }
    fn file(&self) -> &str {
        &self.file
    }
    fn line(&self) -> usize {
        self.line
    }
    fn message(&self) -> &str {
        &self.message
    }
    fn snippet(&self) -> &str {
        &self.snippet
    }
}

/// Renders findings the way compilers do — `file:line: pass: message` —
/// plus a per-pass summary line.
pub fn render_human_for<D: Diagnostic>(
    tool: &str,
    pass_names: &[&str],
    diags: &[D],
    files_scanned: usize,
) -> String {
    let mut out = String::new();
    for f in diags {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file(),
            f.line(),
            f.pass_name(),
            f.message(),
            f.snippet()
        ));
    }
    let counts: Vec<String> = pass_names
        .iter()
        .map(|name| {
            let n = diags.iter().filter(|f| f.pass_name() == *name).count();
            format!("{name} {n}")
        })
        .collect();
    out.push_str(&format!(
        "{tool}: {} file(s) scanned, {} finding(s) ({})\n",
        files_scanned,
        diags.len(),
        counts.join(", "),
    ));
    out
}

/// Serializes findings as a schema-tagged JSON document. Hand-rolled
/// like the rest of the crate — the schema is flat enough that an
/// escaper and format strings cover it.
pub fn render_json_for<D: Diagnostic>(
    schema: &str,
    pass_names: &[&str],
    diags: &[D],
    files_scanned: usize,
    exit_code: i32,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"exit_code\": {exit_code},\n"));
    let counts: Vec<String> = pass_names
        .iter()
        .map(|name| {
            let n = diags.iter().filter(|f| f.pass_name() == *name).count();
            format!("\"{name}\": {n}")
        })
        .collect();
    out.push_str(&format!("  \"counts\": {{{}}},\n", counts.join(", ")));
    out.push_str("  \"findings\": [");
    for (i, f) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\"}}",
            f.pass_name(),
            escape(f.file()),
            f.line(),
            escape(f.message()),
            escape(f.snippet()),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The lint pass names, in exit-bit order, for summary counts.
pub const LINT_PASS_NAMES: [&str; 5] = ["safety", "panic", "ordering", "cast", "alloc"];

/// Renders lint findings for terminals (see [`render_human_for`]).
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    render_human_for("gunrock-lint", &LINT_PASS_NAMES, findings, files_scanned)
}

/// Serializes lint findings as a `gunrock-lint/v1` JSON document.
pub fn render_json(findings: &[Finding], files_scanned: usize, exit_code: i32) -> String {
    render_json_for("gunrock-lint/v1", &LINT_PASS_NAMES, findings, files_scanned, exit_code)
}

/// Computes the process exit code: the OR of the exit bits of every pass
/// with at least one finding (safety=1, panic=2, ordering=4, cast=8,
/// alloc=16 for lint; lock-order=1, atomics=2, taxonomy=4 for audit).
pub fn exit_code<D: Diagnostic>(findings: &[D]) -> i32 {
    findings.iter().fold(0, |acc, f| acc | f.exit_bit())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::Pass;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                pass: Pass::Safety,
                file: "crates/engine/src/x.rs".into(),
                line: 12,
                message: "unsafe block without a `// SAFETY:` comment".into(),
                snippet: "unsafe { \"quoted\" }".into(),
            },
            Finding {
                pass: Pass::Cast,
                file: "crates/engine/src/scan.rs".into(),
                line: 3,
                message: "truncating cast".into(),
                snippet: "x as u32".into(),
            },
        ]
    }

    #[test]
    fn exit_code_is_a_bitmask_of_failing_passes() {
        assert_eq!(exit_code::<Finding>(&[]), 0);
        assert_eq!(exit_code(&sample()), 1 | 8);
    }

    #[test]
    fn human_output_has_file_line_and_summary() {
        let text = render_human(&sample(), 7);
        assert!(text.contains("crates/engine/src/x.rs:12: [safety]"));
        assert!(text.contains("7 file(s) scanned, 2 finding(s)"));
        assert!(text.contains("safety 1, panic 0, ordering 0, cast 1, alloc 0"));
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let json = render_json(&sample(), 7, 9);
        assert!(json.contains("\"schema\": \"gunrock-lint/v1\""));
        assert!(json.contains("\"exit_code\": 9"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 12"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&[], 0, 0);
        assert!(json.contains("\"findings\": []"));
    }
}
