//! `gunrock-audit`: semantic cross-file concurrency and taxonomy audits.
//!
//! Where the lint passes check that each risky *site* carries a
//! justification comment, the audit passes check that the justified
//! sites add up to a *coherent protocol* across files:
//!
//! 1. **lock-order** — extracts `Mutex`/`RwLock`/`Condvar` acquisition
//!    scopes per function, builds the cross-crate lock-order graph,
//!    flags cycles (potential deadlock), locks held across
//!    `Condvar::wait` or blocking calls, and requires every edge to
//!    carry a `// LOCK-ORDER: <parent> -> <child>` annotation. The
//!    inventory is committed as `audit/lock_order.json` and CI denies
//!    unreviewed new edges. Exit bit 1.
//! 2. **atomics** — inventories every atomic field by (struct, field),
//!    classifies each site's role from its op + ordering (counter, CAS
//!    loop, release-store, acquire-load, flag), and flags incoherent
//!    protocols: Release stores with no Acquire reader anywhere,
//!    `Relaxed` sites whose justification claims a pairing, all-SeqCst
//!    flag protocols where pairwise Release/Acquire suffices. The
//!    inventory is committed as `audit/atomics.json`. Exit bit 2.
//! 3. **taxonomy** — the `ErrorCode` taxonomy stays closed: every
//!    variant has a wire spelling in `protocol.rs`, every wire code is
//!    counted in `metrics.rs` and documented in DESIGN.md's table, and
//!    nothing appears downstream that the enum does not define. Exit
//!    bit 4.
//!
//! The escape hatch is `// AUDIT-OK(reason)` on the line or directly
//! above — same placement rule as `ALLOC-OK`, and like it the reason is
//! mandatory. Cycles have no escape hatch: a cyclic lock order is a
//! deadlock waiting for a scheduler, not a style call.

pub mod atomics;
pub mod lockorder;
pub mod taxonomy;

use crate::report::Diagnostic;
use crate::scanner::{self, Line};
use crate::walk;
use std::path::Path;

/// Which audit pass produced a finding. Discriminant order doubles as
/// the `audit` subcommand's exit-bit order (its own bit space — the lint
/// bits already spend 1..16 of the process's u8 exit budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditPass {
    /// Lock-order cycles, unannotated edges, blocking-while-locked (bit 1).
    LockOrder,
    /// Incoherent atomic protocols (bit 2).
    Atomics,
    /// Error-taxonomy drift between protocol/metrics/DESIGN.md (bit 4).
    Taxonomy,
}

impl AuditPass {
    pub fn name(self) -> &'static str {
        match self {
            AuditPass::LockOrder => "lock-order",
            AuditPass::Atomics => "atomics",
            AuditPass::Taxonomy => "taxonomy",
        }
    }

    pub fn exit_bit(self) -> i32 {
        match self {
            AuditPass::LockOrder => 1,
            AuditPass::Atomics => 2,
            AuditPass::Taxonomy => 4,
        }
    }
}

/// One audit violation, pointing at a file:line.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    pub pass: AuditPass,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

impl Diagnostic for AuditFinding {
    fn pass_name(&self) -> &'static str {
        self.pass.name()
    }
    fn exit_bit(&self) -> i32 {
        self.pass.exit_bit()
    }
    fn file(&self) -> &str {
        &self.file
    }
    fn line(&self) -> usize {
        self.line
    }
    fn message(&self) -> &str {
        &self.message
    }
    fn snippet(&self) -> &str {
        &self.snippet
    }
}

/// The audit pass names, in exit-bit order, for summary counts.
pub const AUDIT_PASS_NAMES: [&str; 3] = ["lock-order", "atomics", "taxonomy"];

/// One scanned workspace source file, shared by every audit pass.
pub struct SourceFile {
    /// `/`-separated path relative to the workspace root.
    pub rel: String,
    /// Scanned lines (comments split out, literals blanked).
    pub lines: Vec<Line>,
}

/// Audit scoping, mirroring the lint `Config` conventions: paths are
/// `/`-separated prefixes relative to the workspace root.
pub struct AuditConfig {
    /// Modules whose lock acquisitions feed the lock-order graph.
    pub lock_scope: Vec<String>,
    /// Modules whose atomic sites feed the protocol inventory.
    pub atomics_scope: Vec<String>,
    /// Exempt from the atomics pass (the memory-model wrapper module
    /// audits itself in prose; its tuple-struct internals are opaque to
    /// the field heuristics anyway).
    pub atomics_exempt: Vec<String>,
    /// Where the `ErrorCode` enum and its wire spellings live.
    pub protocol_file: String,
    /// Where every wire code must be counted.
    pub metrics_file: String,
    /// Where every wire code must be documented (the taxonomy table).
    pub design_file: String,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            // the concurrent control plane: engine primitives, the
            // serving layer, operator contexts, and graph IO
            lock_scope: vec![
                "crates/engine/src".into(),
                "crates/server/src".into(),
                "crates/core/src".into(),
                "crates/graph/src".into(),
            ],
            atomics_scope: vec![
                "crates/engine/src".into(),
                "crates/server/src".into(),
                "crates/core/src".into(),
                "crates/graph/src".into(),
            ],
            atomics_exempt: vec!["crates/engine/src/atomics.rs".into()],
            protocol_file: "crates/server/src/protocol.rs".into(),
            metrics_file: "crates/server/src/metrics.rs".into(),
            design_file: "DESIGN.md".into(),
        }
    }
}

/// Outcome of a full audit run.
pub struct AuditRun {
    pub findings: Vec<AuditFinding>,
    pub files_scanned: usize,
    /// The `audit/lock_order.json` document computed from this tree.
    pub lock_order_json: String,
    /// The `audit/atomics.json` document computed from this tree.
    pub atomics_json: String,
    /// The lock-order edges as `(from, to)` ids, sorted — what
    /// `--deny-new-edges` compares against the committed inventory.
    pub lock_edges: Vec<(String, String)>,
}

impl AuditRun {
    pub fn exit_code(&self) -> i32 {
        crate::report::exit_code(&self.findings)
    }
}

fn in_scope(path: &str, scope: &[String], exempt: &[String]) -> bool {
    scope.iter().any(|p| path.starts_with(p.as_str()))
        && !exempt.iter().any(|p| path.starts_with(p.as_str()))
}

/// Audits every workspace source file under `root` with `cfg`.
pub fn audit_workspace(root: &Path, cfg: &AuditConfig) -> std::io::Result<AuditRun> {
    let files = walk::workspace_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let raw = std::fs::read_to_string(root.join(rel))?;
        sources.push(SourceFile { rel: rel.clone(), lines: scanner::scan(&raw) });
    }
    let mut findings = Vec::new();

    let lock_files: Vec<&SourceFile> =
        sources.iter().filter(|s| in_scope(&s.rel, &cfg.lock_scope, &[])).collect();
    let lock = lockorder::run(&lock_files, &mut findings);

    let atomic_files: Vec<&SourceFile> = sources
        .iter()
        .filter(|s| in_scope(&s.rel, &cfg.atomics_scope, &cfg.atomics_exempt))
        .collect();
    let atomics_json = atomics::run(&atomic_files, &mut findings);

    taxonomy::run(root, cfg, &sources, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    Ok(AuditRun {
        findings,
        files_scanned: sources.len(),
        lock_order_json: lock.json,
        atomics_json,
        lock_edges: lock.edges,
    })
}

/// Compares the computed lock-order edges against the committed
/// `audit/lock_order.json` under `root`, returning one finding per edge
/// that is not in the committed inventory (and one if the inventory is
/// missing entirely). This is the `--deny-new-edges` CI gate: a new
/// edge must arrive in the same change that regenerates the inventory,
/// so the lock-hierarchy diff shows up in review.
pub fn deny_new_edges(root: &Path, run: &AuditRun) -> Vec<AuditFinding> {
    let committed_path = root.join("audit").join("lock_order.json");
    let rel = "audit/lock_order.json";
    let Ok(committed) = std::fs::read_to_string(&committed_path) else {
        return vec![AuditFinding {
            pass: AuditPass::LockOrder,
            file: rel.into(),
            line: 1,
            message: "committed lock-order inventory is missing — generate it with \
                      `cargo xtask audit --write` and commit it"
                .into(),
            snippet: String::new(),
        }];
    };
    let committed_edges = parse_committed_edges(&committed);
    let mut out = Vec::new();
    for (from, to) in &run.lock_edges {
        if !committed_edges.contains(&(from.clone(), to.clone())) {
            out.push(AuditFinding {
                pass: AuditPass::LockOrder,
                file: rel.into(),
                line: 1,
                message: format!(
                    "new lock-order edge `{from} -> {to}` is not in the committed \
                     inventory — regenerate with `cargo xtask audit --write`, annotate \
                     the acquisition with `// LOCK-ORDER: {from} -> {to}`, and commit \
                     the diff"
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

/// Extracts the `(from, to)` pairs from a committed lock-order document.
/// A full JSON parser is overkill: the document is machine-written by
/// this same binary, so scanning for the quoted `"from"`/`"to"` values
/// is exact.
fn parse_committed_edges(doc: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut from: Option<String> = None;
    for line in doc.lines() {
        if let Some(v) = quoted_value(line, "\"from\":") {
            from = Some(v);
        }
        if let Some(v) = quoted_value(line, "\"to\":") {
            if let Some(f) = from.take() {
                out.push((f, v));
            }
        }
    }
    out
}

/// Extracts the first `"..."` value after `key` on `line`, if any.
fn quoted_value(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let open = rest.find('"')?;
    let body = &rest[open + 1..];
    let close = body.find('"')?;
    Some(body[..close].to_string())
}

/// Appends one escaped JSON string to `out` (shared by the inventory
/// writers; findings go through `report::render_json_for` instead).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}
