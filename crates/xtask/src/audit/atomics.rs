//! The atomics-protocol audit pass.
//!
//! The ORDERING lint proves every atomic site carries a justification;
//! this pass checks that the justified sites form coherent *protocols*.
//! It inventories every atomic field by (struct, field) across files,
//! groups sites by the field they touch, classifies each site's role
//! from its op + ordering, and then checks three cross-site properties:
//!
//! - a Release store (or Release RMW) whose field has **no**
//!   Acquire-or-stronger reader anywhere publishes to nobody — either
//!   the reader is missing (a bug) or Relaxed would do (overclaimed);
//! - a `Relaxed` site whose justification says it "pairs with" another
//!   site claims a synchronizes-with edge that Relaxed cannot provide;
//! - a field whose whole protocol is SeqCst loads and stores of one
//!   flag needs no sequential consistency — pairwise Release/Acquire
//!   gives the same guarantee cheaper, so keeping SeqCst takes an
//!   `// AUDIT-OK(reason)` (single-variable flags have no Dekker-style
//!   multi-variable invariant for SeqCst to protect).
//!
//! Role vocabulary (also the words ORDERING notes should use):
//! `relaxed-counter` (Relaxed RMW), `cas-loop` (compare_exchange /
//! fetch_update), `release-store` / `acquire-load` (the publication
//! pair), `relaxed-load` / `relaxed-store` (flags with external
//! ordering), `seqcst-*` (strongest, needs an argument).

use super::lockorder::receiver_before;
use super::{push_json_str, AuditFinding, AuditPass, SourceFile};
use crate::passes::{block_above_has, block_above_text};
use crate::scanner::find_token;
use std::collections::BTreeMap;

const ATOMIC_TYPES: [&str; 11] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

const OPS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

#[derive(Debug)]
struct Decl {
    file: String,
    owner: String,
    ty: String,
}

#[derive(Debug)]
struct Site {
    file: String,
    line: usize,
    op: String,
    ordering: String,
    role: &'static str,
    snippet: String,
    audit_ok: bool,
    /// Lowercased comment text on/above the site — what its note claims.
    claim: String,
}

#[derive(Debug, Default)]
struct Group {
    decls: Vec<Decl>,
    sites: Vec<Site>,
}

/// Runs the pass over the scoped files, appending findings and
/// returning the `audit/atomics.json` inventory document.
pub fn run(files: &[&SourceFile], findings: &mut Vec<AuditFinding>) -> String {
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for f in files {
        collect_decls(f, &mut groups);
        collect_sites(f, &mut groups);
    }

    for (name, group) in &groups {
        check_release_without_acquire(name, group, findings);
        check_relaxed_claiming_pairing(group, findings);
        check_all_seqcst_flag(name, group, findings);
    }

    render_json(&groups)
}

/// Role of a site, from its op and ordering. This is the vocabulary
/// ORDERING notes should name.
fn role(op: &str, ordering: &str) -> &'static str {
    match op {
        "compare_exchange" | "compare_exchange_weak" | "compare_and_swap" | "fetch_update" => {
            "cas-loop"
        }
        "swap" => "swap",
        "load" => match ordering {
            "Acquire" | "SeqCst" => "acquire-load",
            _ => "relaxed-load",
        },
        "store" => match ordering {
            "Release" | "SeqCst" => "release-store",
            _ => "relaxed-store",
        },
        // fetch_* read-modify-writes
        _ => match ordering {
            "Relaxed" => "relaxed-counter",
            "Acquire" => "acquire-rmw",
            "Release" => "release-rmw",
            _ => "acqrel-rmw",
        },
    }
}

/// Does this site act as the release (publishing) side of a pairing?
fn is_release_side(s: &Site) -> bool {
    match s.op.as_str() {
        "store" => matches!(s.ordering.as_str(), "Release" | "SeqCst"),
        "load" => false,
        _ => matches!(s.ordering.as_str(), "Release" | "AcqRel" | "SeqCst"),
    }
}

/// Does this site act as the acquire (consuming) side of a pairing?
fn is_acquire_side(s: &Site) -> bool {
    match s.op.as_str() {
        "load" => matches!(s.ordering.as_str(), "Acquire" | "SeqCst"),
        "store" => false,
        _ => matches!(s.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst"),
    }
}

fn check_release_without_acquire(name: &str, group: &Group, out: &mut Vec<AuditFinding>) {
    if group.decls.is_empty() {
        // sites on locals/parameters can pair under another field name;
        // only declared fields support a whole-program claim
        return;
    }
    let releases: Vec<&Site> = group.sites.iter().filter(|s| is_release_side(s)).collect();
    if releases.is_empty() || group.sites.iter().any(is_acquire_side) {
        return;
    }
    if group.sites.iter().any(|s| s.audit_ok) {
        return;
    }
    let first = releases[0];
    out.push(AuditFinding {
        pass: AuditPass::Atomics,
        file: first.file.clone(),
        line: first.line,
        message: format!(
            "`{name}` has a {} but no Acquire-or-stronger reader anywhere in the tree \
             — the publication synchronizes with nobody (add the Acquire load, or \
             downgrade to Relaxed if nothing is published)",
            first.role
        ),
        snippet: first.snippet.clone(),
    });
}

fn check_relaxed_claiming_pairing(group: &Group, out: &mut Vec<AuditFinding>) {
    for s in &group.sites {
        if s.ordering == "Relaxed" && s.claim.contains("pairs with") && !s.audit_ok {
            out.push(AuditFinding {
                pass: AuditPass::Atomics,
                file: s.file.clone(),
                line: s.line,
                message: "Relaxed site whose ORDERING note claims it \"pairs with\" \
                          another site — Relaxed creates no synchronizes-with edge; \
                          use Release/Acquire or fix the note"
                    .into(),
                snippet: s.snippet.clone(),
            });
        }
    }
}

fn check_all_seqcst_flag(name: &str, group: &Group, out: &mut Vec<AuditFinding>) {
    if group.decls.is_empty() || group.sites.iter().any(|s| s.audit_ok) {
        return;
    }
    let loads = group.sites.iter().filter(|s| s.op == "load").count();
    let stores = group.sites.iter().filter(|s| s.op == "store").count();
    if loads == 0 || stores == 0 || loads + stores != group.sites.len() {
        return; // RMWs/CAS in the mix: SeqCst may be doing real work
    }
    if !group.sites.iter().all(|s| s.ordering == "SeqCst") {
        return;
    }
    let first_store =
        group.sites.iter().filter(|s| s.op == "store").min_by_key(|s| (s.file.clone(), s.line));
    if let Some(s) = first_store {
        out.push(AuditFinding {
            pass: AuditPass::Atomics,
            file: s.file.clone(),
            line: s.line,
            message: format!(
                "`{name}` is a single flag touched only by SeqCst loads/stores — \
                 pairwise Release/Acquire provably gives the same guarantee (no \
                 multi-variable invariant exists for SeqCst to order); downgrade, or \
                 keep it with an `// AUDIT-OK(reason)`"
            ),
            snippet: s.snippet.clone(),
        });
    }
}

/// Collects atomic field declarations (struct fields and statics).
fn collect_decls(f: &SourceFile, groups: &mut BTreeMap<String, Group>) {
    let mut depth: i64 = 0;
    let mut struct_stack: Vec<(String, i64)> = Vec::new();
    for line in &f.lines {
        if line.in_test {
            depth += brace_delta(&line.code);
            continue;
        }
        let code = line.code.trim();
        if let Some(at) = find_token(&line.code, "static", 0) {
            let rest = line.code[at + "static".len()..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if let Some((name, ty)) = rest.split_once(':') {
                if let Some(t) = atomic_type(ty) {
                    add_decl(groups, name.trim(), &f.rel, "static", t);
                }
            }
        }
        if let Some(at) = find_token(&line.code, "struct", 0) {
            if let Some(open) = line.code.find('{') {
                let name: String = line.code[at + "struct".len()..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.is_empty() {
                    // not a struct header after all
                } else if let Some(close) = line.code.rfind('}').filter(|c| *c > open) {
                    // one-line body: `pub struct D { a: AtomicU64, b: AtomicBool }`
                    for field in line.code[open + 1..close].split(',') {
                        if let Some((fname, ty)) = strip_vis(field.trim()).split_once(':') {
                            if let Some(t) = atomic_type(ty) {
                                add_decl(groups, fname.trim(), &f.rel, &name, t);
                            }
                        }
                    }
                } else {
                    struct_stack.push((name, depth + 1));
                }
            }
        } else if let Some((owner, _)) = struct_stack.last() {
            if let Some((name, ty)) = strip_vis(code).split_once(':') {
                let name = name.trim();
                let owner = owner.clone();
                if is_ident(name) && !ty.starts_with(':') {
                    if let Some(t) = atomic_type(ty) {
                        add_decl(groups, name, &f.rel, &owner, t);
                    }
                }
            }
        }
        depth += brace_delta(&line.code);
        while struct_stack.last().is_some_and(|(_, d)| depth < *d) {
            struct_stack.pop();
        }
    }
}

fn strip_vis(code: &str) -> &str {
    code.strip_prefix("pub(crate) ")
        .or_else(|| code.strip_prefix("pub(super) "))
        .or_else(|| code.strip_prefix("pub "))
        .unwrap_or(code)
}

fn add_decl(
    groups: &mut BTreeMap<String, Group>,
    name: &str,
    file: &str,
    owner: &str,
    ty: &str,
) {
    if !is_ident(name) || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return;
    }
    groups.entry(name.to_string()).or_default().decls.push(Decl {
        file: file.to_string(),
        owner: owner.to_string(),
        ty: ty.to_string(),
    });
}

/// The atomic type named in a declared type, if any — `Arc<AtomicBool>`
/// and `Vec<AtomicU64>` count: the wrapper changes sharing, not the
/// protocol.
fn atomic_type(ty: &str) -> Option<&'static str> {
    ATOMIC_TYPES.iter().find(|t| ty.contains(*t)).copied()
}

/// Collects atomic op sites. A site is `.op(...)` whose argument list
/// names an `Ordering::` — which is what separates `AtomicU32::load`
/// from `Graph::load(path)`.
fn collect_sites(f: &SourceFile, groups: &mut BTreeMap<String, Group>) {
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for op in OPS {
            let needle = format!(".{op}(");
            let mut from = 0;
            while let Some(at) = code[from..].find(&needle).map(|p| from + p) {
                from = at + needle.len();
                let Some(ordering) = call_ordering(&f.lines, idx, at + needle.len() - 1) else {
                    continue;
                };
                let mut receiver = receiver_before(code, at);
                if receiver.is_empty() || receiver == "self" {
                    // multiline chain: `self.reserved\n    .compare_exchange(...)`
                    if idx > 0 {
                        let prev = f.lines[idx - 1].code.trim_end();
                        receiver = receiver_before(prev, prev.len());
                    }
                }
                if !is_ident(&receiver)
                    || receiver.chars().next().is_some_and(|c| c.is_ascii_digit())
                {
                    continue;
                }
                let r = role(op, &ordering);
                groups.entry(receiver).or_default().sites.push(Site {
                    file: f.rel.clone(),
                    line: line.number,
                    op: op.to_string(),
                    ordering,
                    role: r,
                    snippet: code.trim().to_string(),
                    audit_ok: block_above_has(&f.lines, idx, "AUDIT-OK("),
                    claim: block_above_text(&f.lines, idx).to_lowercase(),
                });
            }
        }
    }
}

/// The first `Ordering::<X>` named inside the call whose open paren sits
/// at `open` on `lines[idx]` — scanning across lines until the paren
/// balance closes (bounded, so a stray unbalanced line cannot run away).
fn call_ordering(lines: &[crate::scanner::Line], idx: usize, open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut arg_text = String::new();
    for (j, line) in lines.iter().enumerate().skip(idx).take(8) {
        let code = if j == idx { &line.code[open..] } else { line.code.as_str() };
        for c in code.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return extract_ordering(&arg_text);
                    }
                }
                c => {
                    if depth > 0 {
                        arg_text.push(c);
                    }
                }
            }
        }
        arg_text.push(' ');
    }
    extract_ordering(&arg_text)
}

fn extract_ordering(text: &str) -> Option<String> {
    let at = text.find("Ordering::")? + "Ordering::".len();
    let name: String =
        text[at..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

fn brace_delta(code: &str) -> i64 {
    code.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Renders the committed `audit/atomics.json` inventory: groups sorted
/// by field name, sites aggregated by (file, op, ordering, role) so the
/// document only changes when the protocol does — not when a line moves.
fn render_json(groups: &BTreeMap<String, Group>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"gunrock-audit/v1\",\n");
    out.push_str("  \"kind\": \"atomics\",\n");
    out.push_str("  \"fields\": [");
    let mut first_group = true;
    for (name, group) in groups {
        if group.sites.is_empty() && group.decls.is_empty() {
            continue;
        }
        out.push_str(if first_group { "\n" } else { ",\n" });
        first_group = false;
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, name);
        out.push_str(", \"declared\": [");
        let mut decls: Vec<String> = group
            .decls
            .iter()
            .map(|d| {
                let mut s = String::from("{\"file\": ");
                push_json_str(&mut s, &d.file);
                s.push_str(", \"owner\": ");
                push_json_str(&mut s, &d.owner);
                s.push_str(", \"type\": ");
                push_json_str(&mut s, &d.ty);
                s.push('}');
                s
            })
            .collect();
        decls.sort();
        decls.dedup();
        out.push_str(&decls.join(", "));
        out.push_str("], \"sites\": [");
        let mut agg: BTreeMap<(String, String, String, &str), usize> = BTreeMap::new();
        for s in &group.sites {
            *agg.entry((s.file.clone(), s.op.clone(), s.ordering.clone(), s.role))
                .or_insert(0) += 1;
        }
        let mut first_site = true;
        for ((file, op, ordering, role), count) in &agg {
            if !first_site {
                out.push_str(", ");
            }
            first_site = false;
            out.push_str("{\"file\": ");
            push_json_str(&mut out, file);
            out.push_str(", \"op\": ");
            push_json_str(&mut out, op);
            out.push_str(", \"ordering\": ");
            push_json_str(&mut out, ordering);
            out.push_str(", \"role\": ");
            push_json_str(&mut out, role);
            out.push_str(&format!(", \"count\": {count}}}"));
        }
        out.push_str("]}");
    }
    if !first_group {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn source(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.into(), lines: scan(src) }
    }

    fn audit(srcs: &[(&str, &str)]) -> (Vec<AuditFinding>, String) {
        let files: Vec<SourceFile> = srcs.iter().map(|(r, s)| source(r, s)).collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        let mut findings = Vec::new();
        let json = run(&refs, &mut findings);
        (findings, json)
    }

    #[test]
    fn release_store_with_acquire_load_is_coherent() {
        let (findings, json) = audit(&[(
            "crates/engine/src/flag.rs",
            "pub struct F { done: AtomicBool }\n\
             impl F {\n    pub fn set(&self) {\n        \
             // ORDERING: Release — publishes the result buffer.\n        \
             self.done.store(true, Ordering::Release);\n    }\n    \
             pub fn get(&self) -> bool {\n        \
             // ORDERING: Acquire — pairs with the Release in set.\n        \
             self.done.load(Ordering::Acquire)\n    }\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(json.contains("\"name\": \"done\""));
        assert!(json.contains("\"role\": \"release-store\""));
        assert!(json.contains("\"role\": \"acquire-load\""));
    }

    #[test]
    fn release_store_without_any_acquire_reader_is_flagged() {
        let (findings, _) = audit(&[(
            "crates/engine/src/flag.rs",
            "pub struct F { done: AtomicBool }\n\
             impl F {\n    pub fn set(&self) {\n        \
             // ORDERING: Release — publishes the result.\n        \
             self.done.store(true, Ordering::Release);\n    }\n    \
             pub fn get(&self) -> bool {\n        \
             // ORDERING: Relaxed — just polling.\n        \
             self.done.load(Ordering::Relaxed)\n    }\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no Acquire"), "{}", findings[0].message);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn acquire_reader_in_another_file_satisfies_the_pairing() {
        let (findings, _) = audit(&[
            (
                "crates/engine/src/w.rs",
                "pub struct W { pub done: AtomicBool }\n\
                 impl W {\n    pub fn set(&self) {\n        \
                 // ORDERING: Release — publishes.\n        \
                 self.done.store(true, Ordering::Release);\n    }\n}\n",
            ),
            (
                "crates/server/src/r.rs",
                "fn poll(w: &W) -> bool {\n    \
                 // ORDERING: Acquire — consumes the publication.\n    \
                 w.done.load(Ordering::Acquire)\n}\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn relaxed_note_claiming_a_pairing_is_flagged() {
        let (findings, _) = audit(&[(
            "crates/engine/src/c.rs",
            "pub struct C { n: AtomicU64 }\n\
             impl C {\n    pub fn bump(&self) {\n        \
             // ORDERING: Relaxed — pairs with the Acquire in read.\n        \
             self.n.fetch_add(1, Ordering::Relaxed);\n    }\n}\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("pairs with"));
    }

    #[test]
    fn all_seqcst_flag_is_advisory_and_audit_ok_waives() {
        let bad = "pub struct S { stop: AtomicBool }\n\
             impl S {\n    pub fn set(&self) {\n        \
             // ORDERING: SeqCst — belt and braces.\n        \
             self.stop.store(true, Ordering::SeqCst);\n    }\n    \
             pub fn get(&self) -> bool {\n        \
             // ORDERING: SeqCst — belt and braces.\n        \
             self.stop.load(Ordering::SeqCst)\n    }\n}\n";
        let (findings, _) = audit(&[("crates/engine/src/s.rs", bad)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("SeqCst"));

        let waived = bad.replace(
            "// ORDERING: SeqCst — belt and braces.\n        self.stop.store",
            "// ORDERING: SeqCst — signal-handler simplicity.\n        \
             // AUDIT-OK(slow path; SeqCst keeps the async-signal argument trivial)\n        \
             self.stop.store",
        );
        let (findings, _) = audit(&[("crates/engine/src/s.rs", &waived)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn relaxed_counters_and_cas_loops_are_clean() {
        let (findings, json) = audit(&[(
            "crates/engine/src/b.rs",
            "pub struct B { reserved: AtomicU64 }\n\
             impl B {\n    pub fn reserve(&self, n: u64) {\n        \
             // ORDERING: Relaxed — CAS loop, value-only accounting.\n        \
             let _ = self.reserved.compare_exchange_weak(\n            \
             0, n, Ordering::Relaxed, Ordering::Relaxed);\n        \
             // ORDERING: Relaxed — relaxed-counter telemetry.\n        \
             self.reserved.fetch_add(0, Ordering::Relaxed);\n    }\n}\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(json.contains("\"role\": \"cas-loop\""));
        assert!(json.contains("\"role\": \"relaxed-counter\""));
    }

    #[test]
    fn multiline_calls_resolve_receiver_and_ordering() {
        let (_, json) = audit(&[(
            "crates/engine/src/m.rs",
            "pub struct M { hw: AtomicU64 }\n\
             impl M {\n    pub fn observe(&self, v: u64) {\n        \
             // ORDERING: Relaxed — monotonic max, value-only.\n        \
             self.hw\n            .fetch_max(v, Ordering::Relaxed);\n    }\n}\n",
        )]);
        assert!(json.contains("\"name\": \"hw\""), "{json}");
        assert!(json.contains("\"op\": \"fetch_max\""), "{json}");
    }

    #[test]
    fn non_atomic_load_calls_are_not_sites() {
        let (_, json) = audit(&[(
            "crates/graph/src/io.rs",
            "fn f() {\n    let g = Graph::load(\"x\");\n    let _ = g;\n}\n",
        )]);
        assert!(!json.contains("\"op\": \"load\""), "{json}");
    }

    #[test]
    fn inventory_is_deterministic() {
        let srcs = [(
            "crates/engine/src/d.rs",
            "pub struct D { a: AtomicU64, b: AtomicBool }\n\
             impl D {\n    pub fn f(&self) {\n        \
             // ORDERING: Relaxed — counter.\n        \
             self.a.fetch_add(1, Ordering::Relaxed);\n    }\n}\n",
        )];
        let (_, j1) = audit(&srcs);
        let (_, j2) = audit(&srcs);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"name\": \"a\""));
        assert!(j1.contains("\"name\": \"b\""), "decl-only fields stay in the inventory");
    }
}
