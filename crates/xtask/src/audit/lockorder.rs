//! The lock-order audit pass.
//!
//! A deadlock needs two locks taken in opposite orders — which is
//! invisible to any single-site lint. This pass recovers, per function,
//! which locks are *held* when another is acquired, accumulates the
//! acquisition edges into a cross-crate graph, and then checks three
//! properties: the graph is acyclic, every edge carries a
//! `// LOCK-ORDER: <parent> -> <child>` annotation at (or above) some
//! acquisition site, and no blocking call (`Condvar::wait`, thread
//! join, channel recv, IO) runs while a lock is held.
//!
//! Lock identity is `<file-stem>::<Struct>.<field>` for fields,
//! `<file-stem>::<STATIC>` for statics. Scope tracking is heuristic —
//! brace depth plus binding shape — tuned to the workspace's idioms:
//! guards bound with `let` live to the end of their block or an explicit
//! `drop(guard)`; guards consumed by `Condvar::wait` are released (and
//! re-acquired if the result rebinds the same name); temporaries like
//! `self.lock().field = x;` live to the end of their statement. Helper
//! methods that return a guard (`fn lock(&self) -> MutexGuard<...>`,
//! `fn registry(&self) -> MutexGuard<...>`) are resolved file-locally,
//! so `self.lock()` and `shared.registry()` count as acquisitions of
//! the underlying field.

use super::{push_json_str, AuditFinding, AuditPass, SourceFile};
use crate::passes::block_above_has;
use crate::scanner::{find_token, has_token};
use std::collections::{BTreeMap, BTreeSet};

/// What the lock pass hands back to the orchestrator.
pub struct LockPassOutput {
    /// The `audit/lock_order.json` document.
    pub json: String,
    /// Sorted `(from, to)` edge ids for the `--deny-new-edges` gate.
    pub edges: Vec<(String, String)>,
}

/// Per-file lock inventory: field/static/alias names resolved to ids.
#[derive(Default)]
struct FileLocks {
    /// field name -> (lock id, kind)
    fields: BTreeMap<String, (String, &'static str)>,
    /// static name -> (lock id, kind)
    statics: BTreeMap<String, (String, &'static str)>,
    /// guard-returning helper method name -> lock id
    aliases: BTreeMap<String, String>,
    /// field names that are condvars (not locks, but wait targets)
    condvars: BTreeSet<String>,
}

/// One lock currently held at a point in a function body.
#[derive(Clone)]
struct Hold {
    id: String,
    /// The guard variable, if the acquisition was `let`-bound.
    var: Option<String>,
    /// Brace depth the hold lives at; released when depth drops below.
    depth: i64,
    /// Statement-scoped temporary (no binding, no block): released at
    /// the next `;` at or below its depth.
    temp: bool,
}

struct EdgeInfo {
    files: BTreeSet<String>,
    first_file: String,
    first_line: usize,
    snippet: String,
}

pub fn run(files: &[&SourceFile], findings: &mut Vec<AuditFinding>) -> LockPassOutput {
    // pass 1: per-file inventories (declarations + guard-returning helpers)
    let mut inventories: Vec<FileLocks> = files.iter().map(|f| collect_decls(f)).collect();
    for (f, inv) in files.iter().zip(inventories.iter_mut()) {
        collect_aliases(f, inv);
    }

    // global registry for the committed inventory
    let mut locks: BTreeMap<String, (&'static str, String)> = BTreeMap::new();
    for (f, inv) in files.iter().zip(inventories.iter()) {
        for (id, kind) in inv.fields.values().chain(inv.statics.values()) {
            locks.insert(id.clone(), (kind, f.rel.clone()));
        }
    }

    // pass 2: acquisition scopes and edges
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    for (f, inv) in files.iter().zip(inventories.iter()) {
        scan_file(f, inv, &mut locks, &mut edges, findings);
    }

    // pass 3: annotations (collected from every scoped file's comments)
    let mut annotations: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for f in files {
        for line in &f.lines {
            let mut rest = line.comment.as_str();
            while let Some(at) = rest.find("LOCK-ORDER:") {
                let spec = &rest[at + "LOCK-ORDER:".len()..];
                if let Some((from, to)) = parse_edge_spec(spec) {
                    annotations.entry((from, to)).or_insert((f.rel.clone(), line.number));
                }
                rest = &rest[at + "LOCK-ORDER:".len()..];
            }
        }
    }

    for ((from, to), info) in &edges {
        if !annotations.contains_key(&(from.clone(), to.clone())) {
            findings.push(AuditFinding {
                pass: AuditPass::LockOrder,
                file: info.first_file.clone(),
                line: info.first_line,
                message: format!(
                    "lock-order edge `{from} -> {to}` has no \
                     `// LOCK-ORDER: {from} -> {to}` annotation at any acquisition site"
                ),
                snippet: info.snippet.clone(),
            });
        }
    }
    for ((from, to), (file, line)) in &annotations {
        if !edges.contains_key(&(from.clone(), to.clone())) {
            findings.push(AuditFinding {
                pass: AuditPass::LockOrder,
                file: file.clone(),
                line: *line,
                message: format!(
                    "stale `LOCK-ORDER: {from} -> {to}` annotation — no such \
                     acquisition edge exists in the tree (fix the annotation or the code)"
                ),
                snippet: String::new(),
            });
        }
    }

    // pass 4: cycle detection over the edge graph
    for cycle in find_cycles(&edges) {
        let first = edges
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .map(|i| (i.first_file.clone(), i.first_line, i.snippet.clone()))
            .unwrap_or_default();
        let mut path = cycle.join(" -> ");
        path.push_str(" -> ");
        path.push_str(&cycle[0]);
        findings.push(AuditFinding {
            pass: AuditPass::LockOrder,
            file: first.0,
            line: first.1,
            message: format!(
                "lock-order cycle: {path} (potential deadlock — two threads taking \
                 these in opposite orders wait on each other forever)"
            ),
            snippet: first.2,
        });
    }

    let edge_ids: Vec<(String, String)> = edges.keys().cloned().collect();
    let json = render_json(&locks, &edges, &annotations);
    LockPassOutput { json, edges: edge_ids }
}

/// Kind of a synchronization field, judged from its declared type text.
fn sync_kind(type_text: &str) -> Option<&'static str> {
    let t = type_text.trim();
    if t.contains("Mutex<") {
        Some("mutex")
    } else if t.contains("RwLock<") {
        Some("rwlock")
    } else if has_token(t, "Condvar") && !t.contains("Condvar::") {
        Some("condvar")
    } else {
        None
    }
}

/// File stem (`breaker` for `crates/engine/src/breaker.rs`) — the
/// module-name half of every lock id.
fn stem(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// Collects `Mutex`/`RwLock`/`Condvar` struct fields and statics.
fn collect_decls(f: &SourceFile) -> FileLocks {
    let mut inv = FileLocks::default();
    let module = stem(&f.rel);
    let mut depth: i64 = 0;
    // (struct name, depth its body opened at)
    let mut struct_stack: Vec<(String, i64)> = Vec::new();
    for line in &f.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        // statics: `static NAME: Mutex<...> = ...` at any depth
        if let Some(at) = find_token(&line.code, "static", 0) {
            let rest = &line.code[at + "static".len()..];
            let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
            if let Some((name, ty)) = rest.split_once(':') {
                let name = name.trim();
                if is_ident(name) {
                    if let Some(kind) = sync_kind(ty) {
                        if kind != "condvar" {
                            inv.statics
                                .insert(name.to_string(), (format!("{module}::{name}"), kind));
                        }
                    }
                }
            }
        }
        // struct headers open a field region
        if let Some(at) = find_token(&line.code, "struct", 0) {
            if line.code.contains('{') {
                let rest = &line.code[at + "struct".len()..];
                let name: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    struct_stack.push((name, depth + 1));
                }
            }
        } else if let Some((owner, _)) = struct_stack.last() {
            // field declaration: `name: Type,` inside the struct body
            let body = code
                .strip_prefix("pub(crate) ")
                .or_else(|| code.strip_prefix("pub(super) "))
                .or_else(|| code.strip_prefix("pub "))
                .unwrap_or(code);
            if let Some((name, ty)) = body.split_once(':') {
                let name = name.trim();
                // `Mutex::new` etc. in initializers has no `<`, so only
                // real type positions match
                if is_ident(name) && !ty.starts_with(':') {
                    if let Some(kind) = sync_kind(ty) {
                        if kind == "condvar" {
                            inv.condvars.insert(name.to_string());
                        } else {
                            inv.fields.insert(
                                name.to_string(),
                                (format!("{module}::{owner}.{name}"), kind),
                            );
                        }
                    }
                }
            }
        }
        depth += brace_delta(&line.code);
        while struct_stack.last().is_some_and(|(_, d)| depth < *d) {
            struct_stack.pop();
        }
    }
    inv
}

/// Registers guard-returning helper methods (`fn lock(&self) ->
/// MutexGuard<...>`) as aliases for the field they lock, so call sites
/// like `self.lock()` resolve to the real lock.
fn collect_aliases(f: &SourceFile, inv: &mut FileLocks) {
    let mut pending: Option<(String, i64)> = None; // (fn name, header depth)
    let mut depth: i64 = 0;
    for line in &f.lines {
        if !line.in_test {
            if let Some(at) = find_token(&line.code, "fn", 0) {
                // only guard *types* count: `ContextGuard`/`RunGuard`
                // wrappers are not lock handles
                if line.code.contains("MutexGuard")
                    || line.code.contains("RwLockReadGuard")
                    || line.code.contains("RwLockWriteGuard")
                {
                    let rest = &line.code[at + "fn".len()..];
                    let name: String = rest
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        pending = Some((name, depth));
                    }
                }
            }
            if let Some((name, _)) = pending.clone() {
                for (field, (id, _)) in &inv.fields {
                    if line.code.contains(&format!(".{field}.lock()"))
                        || line.code.contains(&format!(".{field}.read()"))
                        || line.code.contains(&format!(".{field}.write()"))
                    {
                        inv.aliases.insert(name.clone(), id.clone());
                        pending = None;
                        break;
                    }
                }
            }
        }
        depth += brace_delta(&line.code);
        if let Some((_, d)) = &pending {
            if depth <= *d && line.code.contains('}') {
                pending = None; // helper body ended without a direct acquisition
            }
        }
    }
}

/// Blocking calls that must not run under a lock. Empty-paren forms
/// distinguish `handle.join()` (thread) from `sep.join(parts)` (string).
const BLOCKING: [&str; 9] = [
    ".join()",
    ".recv()",
    "thread::sleep",
    ".accept()",
    ".read_line(",
    ".write_all(",
    ".flush()",
    "read_to_string(",
    "File::open(",
];

fn scan_file(
    f: &SourceFile,
    inv: &FileLocks,
    locks: &mut BTreeMap<String, (&'static str, String)>,
    edges: &mut BTreeMap<(String, String), EdgeInfo>,
    findings: &mut Vec<AuditFinding>,
) {
    let module = stem(&f.rel);
    let mut depth: i64 = 0;
    let mut holds: Vec<Hold> = Vec::new();
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            depth += brace_delta(&line.code);
            holds.retain(|h| h.depth <= depth);
            continue;
        }
        let code = &line.code;
        let end_depth = depth + brace_delta(code);
        let opened_block = end_depth > depth;

        // acquisitions, left to right
        for (pos, method) in acquisition_sites(code, inv) {
            let receiver = receiver_before(code, pos);
            let resolved = inv
                .fields
                .get(&receiver)
                .or_else(|| inv.statics.get(&receiver))
                .map(|(id, _)| id.clone())
                .or_else(|| inv.aliases.get(&method).cloned())
                .unwrap_or_else(|| {
                    let id = format!("{module}::{receiver}");
                    locks.entry(id.clone()).or_insert(("unresolved", f.rel.clone()));
                    id
                });
            for h in &holds {
                if h.id == resolved {
                    if !block_above_has(&f.lines, idx, "AUDIT-OK(") {
                        findings.push(AuditFinding {
                            pass: AuditPass::LockOrder,
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!(
                                "`{resolved}` acquired while already held — a std \
                                 Mutex self-deadlocks here"
                            ),
                            snippet: code.trim().to_string(),
                        });
                    }
                } else {
                    let e =
                        edges.entry((h.id.clone(), resolved.clone())).or_insert_with(|| {
                            EdgeInfo {
                                files: BTreeSet::new(),
                                first_file: f.rel.clone(),
                                first_line: line.number,
                                snippet: code.trim().to_string(),
                            }
                        });
                    e.files.insert(f.rel.clone());
                }
            }
            let (bound_var, temp) = binding_shape(code, pos, opened_block);
            holds.push(Hold { id: resolved, var: bound_var, depth: end_depth, temp });
        }

        // Condvar::wait releases (and maybe re-binds) the guard it consumes
        if let Some(guard_arg) = wait_guard_arg(code) {
            let held_others: Vec<String> = holds
                .iter()
                .filter(|h| h.var.as_deref() != Some(guard_arg.as_str()))
                .map(|h| h.id.clone())
                .collect();
            if !held_others.is_empty() && !block_above_has(&f.lines, idx, "AUDIT-OK(") {
                findings.push(AuditFinding {
                    pass: AuditPass::LockOrder,
                    file: f.rel.clone(),
                    line: line.number,
                    message: format!(
                        "`Condvar::wait` while holding {} — the wait only releases its \
                         own guard, so every other lock is held for the full sleep",
                        held_others.join(", ")
                    ),
                    snippet: code.trim().to_string(),
                });
            }
            // `g = cv.wait(g)` (or `let g = ...`) keeps the hold; a wait
            // whose result binds elsewhere releases it. Token-boundary
            // match so `_gm = ...` does not count as rebinding `gm`.
            let rebinds = find_token(code, &guard_arg, 0).is_some_and(|at| {
                let tail = code[at + guard_arg.len()..].trim_start();
                tail.starts_with('=') && !tail.starts_with("==")
            });
            if !rebinds {
                holds.retain(|h| h.var.as_deref() != Some(guard_arg.as_str()));
            }
        } else if !holds.is_empty() {
            // blocking calls under a lock
            for pat in BLOCKING {
                if code.contains(pat) && !block_above_has(&f.lines, idx, "AUDIT-OK(") {
                    let held: Vec<String> = holds.iter().map(|h| h.id.clone()).collect();
                    findings.push(AuditFinding {
                        pass: AuditPass::LockOrder,
                        file: f.rel.clone(),
                        line: line.number,
                        message: format!(
                            "blocking call `{pat}` while holding {} — move the slow \
                             work outside the critical section",
                            held.join(", ")
                        ),
                        snippet: code.trim().to_string(),
                    });
                    break;
                }
            }
        }

        // explicit `drop(guard)` releases
        let mut from = 0;
        while let Some(at) = find_token(code, "drop", from) {
            from = at + 4;
            let rest = code[at + 4..].trim_start();
            if let Some(arg) = rest.strip_prefix('(') {
                let var: String = arg
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !var.is_empty() {
                    holds.retain(|h| h.var.as_deref() != Some(var.as_str()));
                }
            }
        }

        // statement end releases temporaries; block end releases the rest
        depth = end_depth;
        if code.contains(';') {
            holds.retain(|h| !(h.temp && h.depth >= depth));
        }
        holds.retain(|h| h.depth <= depth);
    }
}

/// Finds `(position, method)` for every lock acquisition on a line:
/// empty-arg `.lock()` / `.read()` / `.write()` calls, plus calls to the
/// file's guard-returning helpers.
fn acquisition_sites(code: &str, inv: &FileLocks) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut methods: Vec<&str> = vec!["lock", "read", "write"];
    for alias in inv.aliases.keys() {
        if !methods.contains(&alias.as_str()) {
            methods.push(alias);
        }
    }
    for m in methods {
        let needle = format!(".{m}()");
        let mut from = 0;
        while let Some(at) = code[from..].find(&needle).map(|p| from + p) {
            // `.read()`/`.write()` only count when the receiver is a
            // known lock (an io `read()` never has empty args, but stay
            // conservative); `.lock()` and aliases always count
            let receiver = receiver_before(code, at);
            let known = inv.fields.contains_key(&receiver)
                || inv.statics.contains_key(&receiver)
                || inv.aliases.contains_key(m);
            if m == "lock" || known {
                out.push((at, m.to_string()));
            }
            from = at + needle.len();
        }
    }
    out.sort();
    out
}

/// The field/static name a method call is invoked on: walks back from
/// the `.` through the receiver chain (skipping `[index]` expressions)
/// and returns the last path segment — `self.cells[i / 64]` yields
/// `cells`, `READ_FAULT_HOOK` yields itself, `self` yields `self`.
/// Shared with the atomics pass, which attributes `.load()`/`.store()`
/// sites to fields the same way.
pub(super) fn receiver_before(code: &str, dot_pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = dot_pos;
    let mut segment_end = dot_pos;
    let mut segments: Vec<String> = Vec::new();
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c == ']' {
            // skip the index expression
            let mut depth = 0;
            while i > 0 {
                let c = bytes[i - 1] as char;
                if c == ']' {
                    depth += 1;
                } else if c == '[' {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
            segment_end = i;
        } else if c.is_alphanumeric() || c == '_' {
            i -= 1;
        } else if c == '.' {
            if segment_end > i {
                segments.push(code[i..segment_end].to_string());
            }
            i -= 1;
            segment_end = i;
        } else {
            break;
        }
    }
    if segment_end > i {
        segments.push(code[i..segment_end].to_string());
    }
    segments.first().cloned().unwrap_or_default()
}

/// Classifies how an acquisition's guard is scoped: `(bound variable,
/// is statement-temporary)`.
fn binding_shape(code: &str, pos: usize, opened_block: bool) -> (Option<String>, bool) {
    // does the guard survive the call expression? skip result-unwrapping
    // suffixes that still yield the guard
    let mut rest = after_call(code, pos);
    loop {
        let t = rest.trim_start();
        if let Some(next) = t
            .strip_prefix(".unwrap_or_else(")
            .map(skip_paren_tail)
            .or_else(|| t.strip_prefix(".unwrap()").map(|r| r.to_string()))
            .or_else(|| t.strip_prefix(".expect(").map(skip_paren_tail))
        {
            rest = next;
        } else {
            break;
        }
    }
    let tail = rest.trim_start();
    let chained = !(tail.is_empty() || tail.starts_with(';') || tail.starts_with('{'));
    if chained {
        return (None, true);
    }
    if opened_block || tail.starts_with('{') {
        // match/if-let scrutinee: block-scoped; bind the pattern var if any
        return (let_bound_var(code, pos), false);
    }
    match let_bound_var(code, pos) {
        Some(v) => (Some(v), false),
        None => (None, true),
    }
}

/// Remainder of `code` after the method call starting at `pos` (the dot)
/// — i.e. past the call's matching close paren.
fn after_call(code: &str, pos: usize) -> String {
    let open = code[pos..].find('(').map(|p| pos + p).unwrap_or(code.len());
    skip_paren_tail(&code[open + 1.min(code.len() - open)..])
}

/// Skips to just past the paren that closes an already-open group.
fn skip_paren_tail(s: &str) -> String {
    let mut depth = 1;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].to_string();
                }
            }
            _ => {}
        }
    }
    String::new()
}

/// The variable a `let`-bound acquisition binds, unwrapping `mut`,
/// `Ok(..)`, and `Some(..)` patterns: `if let Ok(mut slot) = ...` yields
/// `slot`.
fn let_bound_var(code: &str, before: usize) -> Option<String> {
    let head = &code[..before];
    let at = find_token(head, "let", 0)?;
    let mut pat = head[at + 3..].trim_start();
    loop {
        let next = pat
            .strip_prefix("mut ")
            .or_else(|| pat.strip_prefix("Ok("))
            .or_else(|| pat.strip_prefix("Some("))
            .or_else(|| pat.strip_prefix('('));
        match next {
            Some(n) => pat = n.trim_start(),
            None => break,
        }
    }
    let var: String = pat.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if var.is_empty() || var == "_" {
        None
    } else {
        Some(var)
    }
}

/// If the line waits on a condvar, the guard variable it consumes.
fn wait_guard_arg(code: &str) -> Option<String> {
    let at = code
        .find(".wait_timeout(")
        .map(|p| p + ".wait_timeout(".len())
        .or_else(|| code.find(".wait(").map(|p| p + ".wait(".len()))?;
    let arg: String = code[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if arg.is_empty() {
        None
    } else {
        Some(arg)
    }
}

/// Parses `a -> b` from an annotation tail (up to end of comment).
fn parse_edge_spec(spec: &str) -> Option<(String, String)> {
    let (from, to) = spec.split_once("->")?;
    let from = from.trim();
    let to: String = to
        .trim()
        .chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | ':' | '.'))
        .collect();
    if from.is_empty() || to.is_empty() {
        None
    } else {
        Some((from.to_string(), to))
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

fn brace_delta(code: &str) -> i64 {
    code.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Finds every elementary cycle's node set (deduped, rotation-normalized
/// so each cycle reports once).
fn find_cycles(edges: &BTreeMap<(String, String), EdgeInfo>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        // BFS for the shortest path start -> ... -> start
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: Vec<&str> = vec![start];
        let mut found = false;
        let mut qi = 0;
        while qi < queue.len() && !found {
            let node = queue[qi];
            qi += 1;
            for next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if *next == start {
                    parent.insert(start, node);
                    found = true;
                    break;
                }
                if !parent.contains_key(next) {
                    parent.insert(next, node);
                    queue.push(next);
                }
            }
        }
        if found {
            let mut path = vec![start.to_string()];
            let mut at = parent[start];
            while at != start {
                path.push(at.to_string());
                at = parent[at];
            }
            path.reverse();
            // rotate the smallest node first so the same cycle found
            // from different starts dedupes
            let min_at = path
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            path.rotate_left(min_at);
            seen.insert(path);
        }
    }
    seen.into_iter().collect()
}

fn render_json(
    locks: &BTreeMap<String, (&'static str, String)>,
    edges: &BTreeMap<(String, String), EdgeInfo>,
    annotations: &BTreeMap<(String, String), (String, usize)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"gunrock-audit/v1\",\n");
    out.push_str("  \"kind\": \"lock-order\",\n");
    out.push_str("  \"locks\": [");
    for (i, (id, (kind, file))) in locks.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"id\": ");
        push_json_str(&mut out, id);
        out.push_str(", \"kind\": ");
        push_json_str(&mut out, kind);
        out.push_str(", \"file\": ");
        push_json_str(&mut out, file);
        out.push('}');
    }
    out.push_str(if locks.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"edges\": [");
    for (i, ((from, to), info)) in edges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"from\": ");
        push_json_str(&mut out, from);
        out.push_str(", \"to\": ");
        push_json_str(&mut out, to);
        out.push_str(&format!(
            ", \"annotated\": {}, \"files\": [",
            annotations.contains_key(&(from.clone(), to.clone()))
        ));
        for (j, file) in info.files.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, file);
        }
        out.push_str("]}");
    }
    out.push_str(if edges.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn source(rel: &str, src: &str) -> SourceFile {
        SourceFile { rel: rel.into(), lines: scan(src) }
    }

    #[test]
    fn nested_acquisition_produces_an_edge_and_wants_an_annotation() {
        let f = source(
            "crates/engine/src/pair.rs",
            "pub struct Pair {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
             impl Pair {\n    pub fn both(&self) -> u32 {\n        \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        \
             *ga + *gb\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert_eq!(out.edges, vec![("pair::Pair.a".to_string(), "pair::Pair.b".to_string())]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no"), "{}", findings[0].message);
    }

    #[test]
    fn annotation_satisfies_the_edge_and_stale_annotations_flag() {
        let f = source(
            "crates/engine/src/pair.rs",
            "pub struct Pair {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
             impl Pair {\n    pub fn both(&self) -> u32 {\n        \
             // LOCK-ORDER: pair::Pair.a -> pair::Pair.b\n        \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        \
             *ga + *gb\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert_eq!(out.edges.len(), 1);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn opposite_orders_report_a_cycle() {
        let f = source(
            "crates/engine/src/pair.rs",
            "pub struct Pair {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
             impl Pair {\n    pub fn fwd(&self) {\n        \
             // LOCK-ORDER: pair::Pair.a -> pair::Pair.b\n        \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let _gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        \
             drop(ga);\n    }\n    pub fn bwd(&self) {\n        \
             // LOCK-ORDER: pair::Pair.b -> pair::Pair.a\n        \
             let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let _ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             drop(gb);\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let _ = run(&[&f], &mut findings);
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "expected a cycle finding: {findings:?}"
        );
    }

    #[test]
    fn guard_scope_ends_at_block_or_drop() {
        let f = source(
            "crates/engine/src/scopes.rs",
            "pub struct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
             impl S {\n    pub fn sequential(&self) {\n        {\n            \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n            \
             let _ = *ga;\n        }\n        \
             let _gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n    }\n    \
             pub fn dropped(&self) {\n        \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             drop(ga);\n        \
             let _gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert!(out.edges.is_empty(), "sequential locking is not nesting: {:?}", out.edges);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn statement_temporaries_overlap_like_rust_says_they_do() {
        // `Snap { a: self.a.lock().x, b: self.b.lock().x }` holds both
        // guards until the statement ends — that IS an a -> b edge
        let f = source(
            "crates/engine/src/snap.rs",
            "pub struct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
             impl S {\n    pub fn snap(&self) -> (u32, u32) {\n        (\n            \
             *self.a.lock().unwrap_or_else(|e| e.into_inner()),\n            \
             *self.b.lock().unwrap_or_else(|e| e.into_inner()),\n        )\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert_eq!(out.edges.len(), 1, "temporaries overlap: {:?}", out.edges);
    }

    #[test]
    fn condvar_wait_with_a_second_lock_held_is_flagged() {
        let f = source(
            "crates/engine/src/cv.rs",
            "pub struct S {\n    a: Mutex<u32>,\n    m: Mutex<u32>,\n    cv: Condvar,\n}\n\
             impl S {\n    pub fn bad(&self) {\n        \
             // LOCK-ORDER: cv::S.a -> cv::S.m\n        \
             let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let gm = self.m.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let _gm = self.cv.wait(gm).unwrap_or_else(|e| e.into_inner());\n        \
             drop(ga);\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let _ = run(&[&f], &mut findings);
        assert!(findings.iter().any(|f| f.message.contains("Condvar::wait")), "{findings:?}");
    }

    #[test]
    fn wait_loop_rebinding_its_own_guard_is_clean() {
        let f = source(
            "crates/engine/src/q.rs",
            "pub struct Q {\n    inner: Mutex<u32>,\n    ready: Condvar,\n}\n\
             impl Q {\n    pub fn pop(&self) {\n        \
             let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());\n        \
             while *inner == 0 {\n            \
             inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());\n        \
             }\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(out.edges.is_empty());
    }

    #[test]
    fn guard_returning_helpers_resolve_to_their_field() {
        let f = source(
            "crates/engine/src/helper.rs",
            "pub struct S {\n    cells: Mutex<u32>,\n    other: Mutex<u32>,\n}\n\
             impl S {\n    fn lock(&self) -> MutexGuard<'_, u32> {\n        \
             self.cells.lock().unwrap_or_else(|e| e.into_inner())\n    }\n    \
             pub fn nested(&self) {\n        \
             let g = self.lock();\n        \
             let _o = self.other.lock().unwrap_or_else(|e| e.into_inner());\n        \
             drop(g);\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let out = run(&[&f], &mut findings);
        assert_eq!(
            out.edges,
            vec![("helper::S.cells".to_string(), "helper::S.other".to_string())]
        );
        let _ = findings;
    }

    #[test]
    fn blocking_call_under_a_lock_is_flagged_and_audit_ok_suppresses() {
        let f = source(
            "crates/engine/src/blk.rs",
            "pub struct S {\n    a: Mutex<u32>,\n}\n\
             impl S {\n    pub fn bad(&self, h: JoinHandle<()>) {\n        \
             let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             let _ = h.join();\n        drop(g);\n    }\n    \
             pub fn waived(&self, h: JoinHandle<()>) {\n        \
             let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n        \
             // AUDIT-OK(join target never takes blk::S.a)\n        \
             let _ = h.join();\n        drop(g);\n    }\n}\n",
        );
        let mut findings = Vec::new();
        let _ = run(&[&f], &mut findings);
        let blocking: Vec<_> =
            findings.iter().filter(|f| f.message.contains("blocking")).collect();
        assert_eq!(blocking.len(), 1, "{findings:?}");
        assert_eq!(blocking[0].line, 7);
    }

    #[test]
    fn inventory_json_lists_locks_and_edges_deterministically() {
        let f = source(
            "crates/engine/src/pair.rs",
            "pub struct Pair {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n",
        );
        let mut findings = Vec::new();
        let out1 = run(&[&f], &mut findings);
        let out2 = run(&[&f], &mut Vec::new());
        assert_eq!(out1.json, out2.json);
        assert!(out1.json.contains("\"id\": \"pair::Pair.a\""));
        assert!(out1.json.contains("\"kind\": \"mutex\""));
    }
}
