//! The error-taxonomy exhaustiveness pass.
//!
//! The `ErrorCode` taxonomy is *closed*: every failure a client can
//! observe maps to exactly one code, and every code is (a) given a wire
//! spelling in `protocol.rs`, (b) counted in `metrics.rs`'s
//! `CODE_COUNTERS` table, and (c) documented in DESIGN.md's taxonomy
//! table. This pass makes "closed" mechanical: adding a variant in one
//! place fails the audit in the others, in both directions — a counter
//! or doc row for a code the enum does not define is as much drift as a
//! missing one.
//!
//! Unlike the source passes this one reads *raw* text: wire spellings
//! live inside string literals (which the scanner blanks) and the doc
//! table lives in markdown.

use super::{AuditConfig, AuditFinding, AuditPass, SourceFile};
use std::path::Path;

pub fn run(
    root: &Path,
    cfg: &AuditConfig,
    _sources: &[SourceFile],
    findings: &mut Vec<AuditFinding>,
) {
    // no protocol module, no taxonomy to audit (fixture trees opt in by
    // shipping one)
    let Ok(protocol) = std::fs::read_to_string(root.join(&cfg.protocol_file)) else {
        return;
    };
    let variants = enum_variants(&protocol, "ErrorCode");
    let spellings = wire_spellings(&protocol);

    // (a) the enum and its wire spellings agree
    for v in &variants {
        if !spellings.iter().any(|(variant, _, _)| variant == v) {
            findings.push(AuditFinding {
                pass: AuditPass::Taxonomy,
                file: cfg.protocol_file.clone(),
                line: enum_line(&protocol, "ErrorCode"),
                message: format!(
                    "`ErrorCode::{v}` has no wire spelling in `as_str` — the taxonomy \
                     must map every variant"
                ),
                snippet: v.clone(),
            });
        }
    }
    for (variant, _, line) in &spellings {
        if !variants.contains(variant) {
            findings.push(AuditFinding {
                pass: AuditPass::Taxonomy,
                file: cfg.protocol_file.clone(),
                line: *line,
                message: format!(
                    "`as_str` maps `ErrorCode::{variant}`, which the enum does not \
                     define"
                ),
                snippet: variant.clone(),
            });
        }
    }

    // (b) every wire code is counted in metrics.rs, and nothing extra is
    let metrics = std::fs::read_to_string(root.join(&cfg.metrics_file)).unwrap_or_default();
    let counter_line = find_line(&metrics, "CODE_COUNTERS");
    for (_, wire, _) in &spellings {
        if !metrics.contains(&format!("\"{wire}\"")) {
            findings.push(AuditFinding {
                pass: AuditPass::Taxonomy,
                file: cfg.metrics_file.clone(),
                line: counter_line,
                message: format!(
                    "error code \"{wire}\" is not counted in metrics — add it to \
                     `CODE_COUNTERS`"
                ),
                snippet: wire.clone(),
            });
        }
    }
    for (code, line) in quoted_kebab_codes(&metrics, "CODE_COUNTERS") {
        if !spellings.iter().any(|(_, wire, _)| *wire == code) {
            findings.push(AuditFinding {
                pass: AuditPass::Taxonomy,
                file: cfg.metrics_file.clone(),
                line,
                message: format!(
                    "`CODE_COUNTERS` counts \"{code}\", which is not a wire spelling \
                     of any `ErrorCode` variant"
                ),
                snippet: code,
            });
        }
    }

    // (c) every wire code is documented in DESIGN.md's table
    let design = std::fs::read_to_string(root.join(&cfg.design_file)).unwrap_or_default();
    for (_, wire, _) in &spellings {
        if !design.contains(&format!("`{wire}`")) {
            findings.push(AuditFinding {
                pass: AuditPass::Taxonomy,
                file: cfg.design_file.clone(),
                line: 1,
                message: format!(
                    "error code \"{wire}\" is undocumented — add a row to the \
                     taxonomy table in {}",
                    cfg.design_file
                ),
                snippet: wire.clone(),
            });
        }
    }
}

/// The variant names of `enum <name>` — idents at the start of lines
/// between the header and its closing brace.
fn enum_variants(source: &str, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut inside = false;
    let mut depth = 0i64;
    for line in source.lines() {
        let trimmed = line.trim();
        if !inside {
            if trimmed.contains(&format!("enum {name}")) && trimmed.ends_with('{') {
                inside = true;
                depth = 1;
            }
            continue;
        }
        for c in trimmed.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            break;
        }
        if depth == 1 && !trimmed.starts_with("//") && !trimmed.starts_with('#') {
            let ident: String =
                trimmed.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !ident.is_empty()
                && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && (trimmed[ident.len()..].trim_start().starts_with(',')
                    || trimmed[ident.len()..].trim().is_empty())
            {
                out.push(ident);
            }
        }
    }
    out
}

fn enum_line(source: &str, name: &str) -> usize {
    source.lines().position(|l| l.contains(&format!("enum {name}"))).map(|p| p + 1).unwrap_or(1)
}

/// `ErrorCode::Variant => "wire-spelling"` arms, with their line numbers.
fn wire_spellings(source: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("ErrorCode::") {
            rest = &rest[at + "ErrorCode::".len()..];
            let variant: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            let tail = &rest[variant.len()..];
            let Some(arrow) = tail.find("=>") else { continue };
            let after = tail[arrow + 2..].trim_start();
            let Some(stripped) = after.strip_prefix('"') else { continue };
            let Some(close) = stripped.find('"') else { continue };
            if !variant.is_empty() {
                out.push((variant, stripped[..close].to_string(), i + 1));
            }
        }
    }
    out
}

fn find_line(source: &str, needle: &str) -> usize {
    source.lines().position(|l| l.contains(needle)).map(|p| p + 1).unwrap_or(1)
}

/// Kebab-case string literals in the lines following the `marker` line
/// (the `CODE_COUNTERS` table): the first quoted string per entry line.
fn quoted_kebab_codes(source: &str, marker: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut inside = false;
    for (i, line) in source.lines().enumerate() {
        if !inside {
            if line.contains(marker) && line.contains('[') {
                inside = true;
            }
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with("];") || trimmed == "]" {
            break;
        }
        if let Some(open) = trimmed.find('"') {
            let body = &trimmed[open + 1..];
            if let Some(close) = body.find('"') {
                out.push((body[..close].to_string(), i + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_and_spellings_parse() {
        let src = "pub enum ErrorCode {\n    /// doc\n    BadRequest,\n    QueueFull,\n}\n\
                   impl ErrorCode {\n    pub fn as_str(self) -> &'static str {\n        \
                   match self {\n            ErrorCode::BadRequest => \"bad-request\",\n            \
                   ErrorCode::QueueFull => \"queue-full\",\n        }\n    }\n}\n";
        assert_eq!(enum_variants(src, "ErrorCode"), vec!["BadRequest", "QueueFull"]);
        let spellings = wire_spellings(src);
        assert_eq!(spellings.len(), 2);
        assert_eq!(spellings[0].0, "BadRequest");
        assert_eq!(spellings[0].1, "bad-request");
    }

    #[test]
    fn code_counter_table_entries_parse() {
        let src = "pub const CODE_COUNTERS: [(&str, &str); 2] = [\n    \
                   (\"bad-request\", \"rejected_bad_request\"),\n    \
                   (\"queue-full\", \"rejected_queue_full\"),\n];\n";
        let codes = quoted_kebab_codes(src, "CODE_COUNTERS");
        assert_eq!(codes.len(), 2);
        assert_eq!(codes[0].0, "bad-request");
        assert_eq!(codes[1].0, "queue-full");
    }
}
