//! `gunrock-lint`: the workspace safety-audit linter.
//!
//! Five passes over every `.rs` file under `crates/`:
//!
//! 1. **safety** — every `unsafe` block/fn/impl needs an immediately
//!    preceding `// SAFETY:` comment (`unsafe fn` may use a `# Safety`
//!    doc section instead). Exit bit 1.
//! 2. **panic** — `.unwrap()`, `.expect(`, and `panic!` are denied in
//!    production modules; `// LINT-ALLOW(panic): reason` is the audited
//!    escape hatch. Exit bit 2.
//! 3. **ordering** — every `Ordering::` use outside
//!    `crates/engine/src/atomics.rs` needs an `// ORDERING:`
//!    justification in its function scope. Exit bit 4.
//! 4. **cast** — `as u32` / `as usize` in hot-path modules need a
//!    checked conversion or a `// CAST:` note. Exit bit 8.
//! 5. **alloc** — heap allocation (`Vec::new()` / `vec![` /
//!    `with_capacity(` / `.collect(`) is denied in the pooled operator
//!    hot paths (`advance/`, `filter/`); `// ALLOC-OK(reason)` is the
//!    audited escape hatch for off-steady-state launches. Exit bit 16.
//!
//! A second subcommand, `audit` (the `gunrock-audit` analyzer in
//! [`audit`]), runs semantic cross-file passes — lock-order, atomic
//! protocols, error-taxonomy exhaustiveness — with its own exit-bit
//! space.
//!
//! The binary front-end lives in `main.rs`; everything here is a library
//! so the fixture self-tests can drive the passes directly.

pub mod audit;
pub mod passes;
pub mod report;
pub mod scanner;
pub mod walk;

use passes::{Config, Finding};
use std::path::Path;

/// Outcome of a full lint run.
pub struct LintRun {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl LintRun {
    pub fn exit_code(&self) -> i32 {
        report::exit_code(&self.findings)
    }
}

/// Lints every workspace source file under `root` with `cfg`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintRun> {
    let files = walk::workspace_sources(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        findings.extend(passes::lint_file(rel, &scanner::scan(&source), cfg));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    Ok(LintRun { findings, files_scanned: files.len() })
}

/// Lints one file (used by the fixture self-tests, which point the
/// linter at deliberately bad inputs outside the normal walk).
pub fn lint_path(root: &Path, rel: &str, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(root.join(rel))?;
    Ok(passes::lint_file(rel, &scanner::scan(&source), cfg))
}
