//! The five audit passes of `gunrock-lint`.
//!
//! Each pass walks the scanned lines of one file and emits findings.
//! Justification rules are deliberately positional — a marker comment
//! must be on the offending line, in the contiguous comment/attribute
//! block directly above it, or (for ORDERING/CAST) anywhere between the
//! use and its enclosing `fn` header, including the fn's doc block.
//! That keeps the audit trail next to the code it justifies instead of
//! in a far-away allowlist.

use crate::scanner::{find_token, has_token, Line};

/// Which audit pass produced a finding. The discriminants double as the
/// process exit-code bits, so CI can tell at a glance which gate failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// `unsafe` without a `// SAFETY:` justification (exit bit 1).
    Safety,
    /// `.unwrap()` / `.expect(` / `panic!` in production modules (bit 2).
    Panic,
    /// `Ordering::` without `// ORDERING:` outside atomics.rs (bit 4).
    Ordering,
    /// Truncating `as u32` / `as usize` in hot paths without `// CAST:`
    /// (bit 8).
    Cast,
    /// Heap allocation (`Vec::new()` / `vec![` / `with_capacity(` /
    /// `.collect(`) in zero-allocation operator hot paths without an
    /// `// ALLOC-OK(reason)` justification (bit 16).
    Alloc,
}

impl Pass {
    pub fn name(self) -> &'static str {
        match self {
            Pass::Safety => "safety",
            Pass::Panic => "panic",
            Pass::Ordering => "ordering",
            Pass::Cast => "cast",
            Pass::Alloc => "alloc",
        }
    }

    pub fn exit_bit(self) -> i32 {
        match self {
            Pass::Safety => 1,
            Pass::Panic => 2,
            Pass::Ordering => 4,
            Pass::Cast => 8,
            Pass::Alloc => 16,
        }
    }
}

/// One lint violation, pointing at a file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: Pass,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

/// Per-pass scoping. Paths are `/`-separated and relative to the repo
/// root; a file is in scope if its path starts with any scope prefix
/// and matches no exempt prefix.
pub struct Config {
    /// Modules where `.unwrap()`/`.expect()`/`panic!` are denied.
    pub panic_scope: Vec<String>,
    pub panic_exempt: Vec<String>,
    /// Modules where every `Ordering::` use needs an `// ORDERING:` note.
    pub ordering_scope: Vec<String>,
    pub ordering_exempt: Vec<String>,
    /// Hot-path modules where `as u32`/`as usize` needs a `// CAST:` note.
    pub cast_scope: Vec<String>,
    /// Zero-allocation operator modules where heap allocation needs an
    /// `// ALLOC-OK(reason)` note (steady-state iterations must come
    /// from the buffer pool instead).
    pub alloc_scope: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            // all production crates; bench is dev tooling and tests/ is
            // the integration harness — panics there are the point
            panic_scope: vec![
                "crates/graph/src".into(),
                "crates/engine/src".into(),
                "crates/core/src".into(),
                "crates/algos/src".into(),
                "crates/baselines/src".into(),
                "crates/cli/src".into(),
                "crates/server/src".into(),
            ],
            panic_exempt: vec![],
            ordering_scope: vec![
                "crates/graph/src".into(),
                "crates/engine/src".into(),
                "crates/core/src".into(),
                "crates/algos/src".into(),
                "crates/baselines/src".into(),
                "crates/cli/src".into(),
                "crates/server/src".into(),
            ],
            // atomics.rs IS the memory-model module: its doc comments
            // carry the ordering arguments for the whole wrapper API
            ordering_exempt: vec!["crates/engine/src/atomics.rs".into()],
            cast_scope: vec![
                "crates/engine/src/scan.rs".into(),
                "crates/engine/src/compact.rs".into(),
                "crates/engine/src/sort.rs".into(),
                "crates/engine/src/search.rs".into(),
                "crates/engine/src/bitmap.rs".into(),
                "crates/engine/src/lanes.rs".into(),
                "crates/engine/src/frontier.rs".into(),
                "crates/engine/src/reduce.rs".into(),
                "crates/engine/src/unsafe_slice.rs".into(),
                "crates/core/src/advance".into(),
                "crates/core/src/filter".into(),
                "crates/core/src/util.rs".into(),
            ],
            // the operators the zero-allocation advance work (§4.2/§4.4)
            // pooled: new allocations there must argue why they are not
            // on the steady-state path. bitmap.rs is the word-frontier
            // storage: steady state must draw words from the pool, so
            // any direct allocation there needs the same argument
            // budget.rs and watchdog.rs sit on the governance path every
            // pooled checkout crosses: allocations there would charge the
            // very accounting they implement, so each one must be argued.
            // lanes.rs is the MS-BFS lane-mask storage (advance covers
            // advance/msbfs.rs): the batched sweep touches its words every
            // edge, so steady state must never allocate there either
            alloc_scope: vec![
                "crates/core/src/advance".into(),
                "crates/core/src/filter".into(),
                "crates/engine/src/bitmap.rs".into(),
                "crates/engine/src/lanes.rs".into(),
                "crates/engine/src/budget.rs".into(),
                "crates/engine/src/watchdog.rs".into(),
            ],
        }
    }
}

fn in_scope(path: &str, scope: &[String], exempt: &[String]) -> bool {
    scope.iter().any(|p| path.starts_with(p.as_str()))
        && !exempt.iter().any(|p| path.starts_with(p.as_str()))
}

/// Runs every pass over one scanned file.
pub fn lint_file(path: &str, lines: &[Line], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    safety_pass(path, lines, &mut out);
    if in_scope(path, &cfg.panic_scope, &cfg.panic_exempt) {
        panic_pass(path, lines, &mut out);
    }
    if in_scope(path, &cfg.ordering_scope, &cfg.ordering_exempt) {
        marker_pass(path, lines, Pass::Ordering, "Ordering::", "ORDERING:", &mut out);
    }
    if in_scope(path, &cfg.cast_scope, &[]) {
        cast_pass(path, lines, &mut out);
    }
    if in_scope(path, &cfg.alloc_scope, &[]) {
        alloc_pass(path, lines, &mut out);
    }
    out
}

/// True if the contiguous comment/attribute block directly above
/// `lines[idx]` (or the line itself) contains `marker`. Shared with the
/// audit passes, whose `AUDIT-OK(reason)` hatch uses the same placement
/// rule as `ALLOC-OK`.
pub(crate) fn block_above_has(lines: &[Line], idx: usize, marker: &str) -> bool {
    if lines[idx].comment.contains(marker) {
        return true;
    }
    for j in (0..idx).rev() {
        let l = &lines[j];
        if l.comment.contains(marker) {
            return true;
        }
        let code = l.code.trim();
        let comment_only = code.is_empty() && !l.comment.is_empty();
        let attr_only = code.starts_with("#[") || code.starts_with("#!");
        if !(comment_only || attr_only) {
            return false;
        }
    }
    false
}

/// Concatenated comment text of `lines[idx]` and the contiguous
/// comment/attribute block directly above it — the same region
/// `block_above_has` searches, surfaced as text so the audit passes can
/// inspect what a justification *claims*, not just that one exists.
pub(crate) fn block_above_text(lines: &[Line], idx: usize) -> String {
    let mut parts = vec![lines[idx].comment.clone()];
    for j in (0..idx).rev() {
        let l = &lines[j];
        let code = l.code.trim();
        let comment_only = code.is_empty() && !l.comment.is_empty();
        let attr_only = code.starts_with("#[") || code.starts_with("#!");
        if !(comment_only || attr_only) {
            break;
        }
        parts.push(l.comment.clone());
    }
    parts.reverse();
    parts.join(" ")
}

/// True if `marker` appears between `lines[idx]` and its enclosing `fn`
/// header (inclusive of the fn's contiguous doc/attribute block).
pub(crate) fn fn_scope_has(lines: &[Line], idx: usize, marker: &str) -> bool {
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut above_fn = false;
    for j in (0..idx).rev() {
        let l = &lines[j];
        if l.comment.contains(marker) {
            return true;
        }
        if above_fn {
            let code = l.code.trim();
            let passthrough =
                code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
            if !passthrough {
                return false;
            }
        } else if has_token(&l.code, "fn") {
            above_fn = true;
        }
    }
    false
}

/// Every `unsafe` block, fn, or impl needs a `// SAFETY:` comment on the
/// line or directly above it; `unsafe fn` also accepts a `# Safety` doc
/// section. Applies to test code too — tests argue safety like anyone
/// else.
fn safety_pass(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = find_token(&line.code, "unsafe", 0) else { continue };
        // only the first `unsafe` on a line anchors a finding; nested
        // same-line occurrences share its justification
        let rest = line.code[pos + "unsafe".len()..].trim_start();
        let is_fn_decl = rest.starts_with("fn");
        let kind = if is_fn_decl {
            "unsafe fn"
        } else if rest.starts_with("impl") {
            "unsafe impl"
        } else if rest.starts_with("trait") {
            "unsafe trait"
        } else {
            "unsafe block"
        };
        let justified = block_above_has(lines, idx, "SAFETY:")
            || (is_fn_decl && block_above_has(lines, idx, "# Safety"));
        if !justified {
            out.push(Finding {
                pass: Pass::Safety,
                file: path.to_string(),
                line: line.number,
                message: format!(
                    "{kind} without a `// SAFETY:` comment on the preceding lines{}",
                    if is_fn_decl { " (or a `# Safety` doc section)" } else { "" }
                ),
                snippet: line.code.trim().to_string(),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` / `panic!` are denied in production code.
/// The escape hatch is a `LINT-ALLOW(panic): reason` comment on the line
/// or directly above — it must carry a reason, which is the point.
fn panic_pass(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut hits: Vec<&str> = Vec::new();
        if line.code.contains(".unwrap()") {
            hits.push(".unwrap()");
        }
        if line.code.contains(".expect(") {
            hits.push(".expect(");
        }
        if has_token(&line.code, "panic") && line.code.contains("panic!") {
            hits.push("panic!");
        }
        if hits.is_empty() || block_above_has(lines, idx, "LINT-ALLOW(panic)") {
            continue;
        }
        for hit in hits {
            out.push(Finding {
                pass: Pass::Panic,
                file: path.to_string(),
                line: line.number,
                message: format!(
                    "`{hit}` in a production module — return a GunrockError (or add \
                     `// LINT-ALLOW(panic): reason` if aborting is the contract)"
                ),
                snippet: line.code.trim().to_string(),
            });
        }
    }
}

/// Shared shape of the ORDERING pass: each `needle` use outside test
/// code needs `marker` within its function scope. `std::cmp::Ordering`
/// shares the atomics type's name but has nothing to justify, so
/// `cmp::`-qualified uses are skipped. Import lines (`use ...` and
/// `pub use ...` re-exports, e.g. `use std::sync::atomic::Ordering::Relaxed;`)
/// name the type without using it, so they are skipped too — there is
/// nothing at an import to justify, and module-level imports have no
/// enclosing fn to carry a note anyway.
fn marker_pass(
    path: &str,
    lines: &[Line],
    pass: Pass,
    needle: &str,
    marker: &str,
    out: &mut Vec<Finding>,
) {
    let is_atomic_use = |code: &str| {
        let mut from = 0;
        while let Some(pos) = code[from..].find(needle).map(|p| from + p) {
            if !code[..pos].ends_with("cmp::") {
                return true;
            }
            from = pos + needle.len();
        }
        false
    };
    let is_import = |code: &str| {
        let trimmed = code.trim_start();
        let after_vis = trimmed
            .strip_prefix("pub(crate) ")
            .or_else(|| trimmed.strip_prefix("pub(super) "))
            .or_else(|| trimmed.strip_prefix("pub "))
            .unwrap_or(trimmed);
        after_vis.starts_with("use ")
    };
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || is_import(&line.code) || !is_atomic_use(&line.code) {
            continue;
        }
        if !fn_scope_has(lines, idx, marker) {
            out.push(Finding {
                pass,
                file: path.to_string(),
                line: line.number,
                message: format!(
                    "`{needle}` use without a `// {marker}` justification in the \
                     enclosing function"
                ),
                snippet: line.code.trim().to_string(),
            });
        }
    }
}

/// Truncating `as u32` / `as usize` casts in hot-path modules need a
/// checked conversion instead, or a `// CAST:` note arguing why the
/// value fits.
fn cast_pass(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut found: Vec<&str> = Vec::new();
        for target in ["u32", "usize"] {
            let mut from = 0;
            while let Some(pos) = find_token(&line.code, "as", from) {
                from = pos + 2;
                let rest = line.code[pos + 2..].trim_start();
                if rest.starts_with(target)
                    && !rest[target.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    found.push(target);
                    break;
                }
            }
        }
        if found.is_empty() || fn_scope_has(lines, idx, "CAST:") {
            continue;
        }
        for target in found {
            out.push(Finding {
                pass: Pass::Cast,
                file: path.to_string(),
                line: line.number,
                message: format!(
                    "`as {target}` in a hot-path module can truncate — use a checked \
                     conversion or add `// CAST:` explaining why the value fits"
                ),
                snippet: line.code.trim().to_string(),
            });
        }
    }
}

/// Heap allocations are denied in the pooled operator hot paths: scratch
/// and output buffers must come from the context's `BufferPool` so
/// steady-state iterations allocate nothing. The escape hatch is an
/// `// ALLOC-OK(reason)` comment on the line or directly above — used
/// for per-launch allocations off the steady-state path (large-frontier
/// merges, overflow fallbacks, effect-only sinks).
fn alloc_pass(path: &str, lines: &[Line], out: &mut Vec<Finding>) {
    const PATTERNS: [&str; 4] = ["Vec::new()", "vec![", "with_capacity(", ".collect("];
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let hits: Vec<&str> =
            PATTERNS.iter().copied().filter(|p| line.code.contains(p)).collect();
        if hits.is_empty() || block_above_has(lines, idx, "ALLOC-OK(") {
            continue;
        }
        for hit in hits {
            out.push(Finding {
                pass: Pass::Alloc,
                file: path.to_string(),
                line: line.number,
                message: format!(
                    "`{hit}` in a zero-allocation operator hot path — take the buffer \
                     from `ctx.pool()` (or add `// ALLOC-OK(reason)` if this launch is \
                     off the steady-state path)"
                ),
                snippet: line.code.trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &scan(src), &Config::default())
    }

    #[test]
    fn unsafe_block_without_safety_comment_is_flagged() {
        let f =
            run("crates/engine/src/x.rs", "fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Safety);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p = 0 };\n    unsafe { *p = 1 }; // SAFETY: still valid\n}\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_reaches_over_attributes() {
        let src = "// SAFETY: vec is fully initialized below\n#[allow(clippy::uninit_vec)]\nunsafe {\n    v.set_len(n);\n}\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let src = "/// Writes through the pointer.\n///\n/// # Safety\n/// `p` must be valid for writes.\npub unsafe fn poke(p: *mut u8) { }\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_production_flagged_but_test_code_exempt() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Panic);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn lint_allow_escape_hatch() {
        let src = "fn f() {\n    // LINT-ALLOW(panic): fault injector aborts by design\n    panic!(\"injected\");\n}\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_outside_scope_is_ignored() {
        assert!(run("crates/bench/src/x.rs", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn ordering_needs_justification_in_fn_scope() {
        let bad = "fn f(a: &AtomicU32) {\n    a.load(Ordering::Relaxed);\n}\n";
        let f = run("crates/engine/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Ordering);

        let good = "// ORDERING: Relaxed is fine, counter is advisory.\nfn f(a: &AtomicU32) {\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::Relaxed);\n}\n";
        assert!(run("crates/engine/src/x.rs", good).is_empty());
    }

    #[test]
    fn ordering_marker_does_not_leak_across_fns() {
        let src = "// ORDERING: justified here.\nfn f(a: &AtomicU32) { a.load(Ordering::Relaxed); }\n\nfn g(a: &AtomicU32) {\n    a.load(Ordering::Acquire);\n}\n";
        let f = run("crates/engine/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_ordering() {
        let src = "fn f(a: u32, b: u32) {\n    match a.cmp(&b) { std::cmp::Ordering::Less => {}, _ => {} }\n}\n";
        assert!(run("crates/algos/src/x.rs", src).is_empty());
        let mixed = "fn f(x: &A) { x.load(Ordering::Relaxed); match std::cmp::Ordering::Less { _ => {} } }\n";
        assert_eq!(run("crates/engine/src/x.rs", mixed).len(), 1);
    }

    #[test]
    fn ordering_imports_and_reexports_are_not_sites() {
        // regression: `use std::sync::atomic::Ordering::Relaxed;` names
        // the type at module level, where no fn scope exists to carry a
        // note — imports must not count as ordering sites
        let src = "use std::sync::atomic::Ordering::Relaxed;\n\
                   pub use std::sync::atomic::Ordering::{Acquire, Release};\n\
                   pub(crate) use std::sync::atomic::Ordering::SeqCst;\n\
                   fn f(a: &AtomicU32) {\n    a.load(Ordering::Relaxed);\n}\n";
        let f = run("crates/engine/src/x.rs", src);
        assert_eq!(f.len(), 1, "only the real site is flagged: {f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn atomics_module_is_ordering_exempt() {
        let src = "fn f(a: &AtomicU32) { a.load(Ordering::Relaxed); }\n";
        assert!(run("crates/engine/src/atomics.rs", src).is_empty());
    }

    #[test]
    fn cast_pass_flags_hot_path_truncation() {
        let f = run("crates/engine/src/scan.rs", "fn f(x: u64) -> u32 { x as u32 }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Cast);

        let good = "fn f(x: u64) -> u32 {\n    // CAST: x < u32::MAX asserted by the caller.\n    x as u32\n}\n";
        assert!(run("crates/engine/src/scan.rs", good).is_empty());
    }

    #[test]
    fn cast_pass_ignores_cold_modules_and_other_widths() {
        assert!(run("crates/algos/src/bfs.rs", "fn f(x: u64) -> u32 { x as u32 }\n").is_empty());
        assert!(
            run("crates/engine/src/scan.rs", "fn f(x: u32) -> u64 { x as u64 }\n").is_empty()
        );
    }

    #[test]
    fn strings_do_not_trip_passes() {
        let src = "fn f() { log(\"panic! unsafe Ordering::Relaxed as u32\"); }\n";
        assert!(run("crates/engine/src/scan.rs", src).is_empty());
    }

    #[test]
    fn alloc_pass_flags_hot_path_allocation() {
        let f = run(
            "crates/core/src/advance/x.rs",
            "fn f() {\n    let v: Vec<u32> = Vec::new();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Alloc);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn alloc_pass_flags_every_allocation_form() {
        let src = "fn f() {\n    let a = vec![0u32; 4];\n    let b = Vec::<u32>::with_capacity(4);\n    let c: Vec<u32> = (0..4).collect();\n}\n";
        let f = run("crates/core/src/filter/x.rs", src);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.pass == Pass::Alloc));
    }

    #[test]
    fn alloc_ok_escape_hatch_inline_or_above() {
        let src = "fn f() {\n    let a = Vec::new(); // ALLOC-OK(effect-only sink, never grows)\n    // ALLOC-OK(u32-overflow fallback path)\n    let b = vec![0u32; 4];\n}\n";
        assert!(run("crates/core/src/advance/x.rs", src).is_empty());
    }

    #[test]
    fn alloc_pass_ignores_cold_modules_and_test_code() {
        let src = "fn f() { let v: Vec<u32> = Vec::new(); }\n";
        assert!(run("crates/algos/src/bfs.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; }\n}\n";
        assert!(run("crates/core/src/advance/x.rs", test_src).is_empty());
    }
}
