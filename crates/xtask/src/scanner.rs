//! Comment- and string-aware line scanner.
//!
//! The linter never parses Rust properly — it only needs to know, per
//! line, (a) the code text with comments stripped and string/char
//! literal *contents* blanked, (b) the comment text, and (c) whether the
//! line sits inside `#[cfg(test)]`-gated code. A hand-rolled state
//! machine over the raw source delivers exactly that with no
//! dependencies, handling nested block comments, raw strings
//! (`r#"..."#`), byte strings, char literals, and the char-vs-lifetime
//! ambiguity (`'a'` vs `&'a T`).

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code on the line, with comments removed and literal contents
    /// blanked (quotes are kept, so a string literal appears as `""`).
    pub code: String,
    /// Concatenated comment text on the line (line, doc, and block
    /// comment content).
    pub comment: String,
    /// True if the line is inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Scans `source` into per-line code/comment views and marks
/// `#[cfg(test)]` regions.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line { number: 1, ..Line::default() };
    let mut state = State::Code;
    let mut i = 0usize;

    let flush = |lines: &mut Vec<Line>, cur: &mut Line| {
        let number = cur.number;
        lines.push(std::mem::take(cur));
        cur.number = number + 1;
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush(&mut lines, &mut cur);
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let prev_ident = i
                    .checked_sub(1)
                    .and_then(|p| chars.get(p))
                    .is_some_and(|&p| p.is_alphanumeric() || p == '_');
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if !prev_ident && (c == 'r' || c == 'b') {
                    // possible raw/byte literal prefix
                    let mut j = i + 1;
                    let mut saw_r = c == 'r';
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        saw_r = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while saw_r && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if saw_r && chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // byte char literal b'x'
                        cur.code.push_str("b''");
                        state = State::CharLit;
                        i += 2;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        cur.code.push('"');
                        state = State::Str;
                        i += 2;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // char literal or lifetime
                    if next == Some('\\') {
                        cur.code.push_str("''");
                        state = State::CharLit;
                        i += 2;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        // 'x' (any single char, not an empty pair)
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        // lifetime like 'a — keep the tick in code
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state =
                        if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while n < hashes && chars.get(j) == Some(&'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        cur.code.push('"');
                        state = State::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

/// True if `code` contains `tok` as a standalone token (not part of a
/// longer identifier).
pub fn has_token(code: &str, tok: &str) -> bool {
    find_token(code, tok, 0).is_some()
}

/// Finds the byte offset of the next standalone occurrence of `tok` in
/// `code` at or after `from`.
pub fn find_token(code: &str, tok: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code.get(start..).and_then(|s| s.find(tok)) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + tok.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Marks lines covered by `#[cfg(test)]` (or `#[cfg(all(test, ...))]`)
/// items: the attribute arms a brace counter that claims every line up
/// to the item's closing brace.
fn mark_test_regions(lines: &mut [Line]) {
    let mut idx = 0;
    while idx < lines.len() {
        let code = lines[idx].code.trim().to_string();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // claim lines until the gated item ends: either a `;` before
            // any `{` (e.g. a gated `use`), or the matching close brace
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = idx;
            while j < lines.len() {
                lines[j].in_test = true;
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened => {
                            // attribute on a braceless item
                            depth = 0;
                            opened = true;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_blanks_strings() {
        let src = "let x = \"unsafe\"; // SAFETY: not really\nlet y = 1;\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("SAFETY:"));
        assert_eq!(lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_do_not_leak_into_code() {
        let src = "let s = r#\"panic! Ordering::Relaxed\"#;\nlet c = 'u'; let l: &'static str = \"\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains("Ordering"));
        assert!(lines[1].code.contains("&'static"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let src = "let s = \"line one\n  unsafe { }\n\";\nlet t = 3;\n";
        let lines = scan(src);
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[3].code.contains("let t"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lines = scan(src);
        assert_eq!(lines[0].code.trim(), "let x = 1;");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("pub mod unsafe_slice;", "unsafe"));
        assert!(!has_token("maybe_panic(x)", "panic"));
        assert!(find_token("a fn b fn", "fn", 4).is_some());
    }
}
