//! `cargo run -p xtask -- <lint|audit> [--json PATH] [--quiet] [--root DIR]`
//!
//! `lint` exit code is a bitmask of failing passes (safety=1, panic=2,
//! ordering=4, cast=8, alloc=16). `audit` has its own bit space
//! (lock-order=1, atomics=2, taxonomy=4). For both, 0 means the tree is
//! clean and 32 means usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::audit::AuditConfig;
use xtask::passes::Config;
use xtask::report;

const USAGE: &str = "usage: cargo run -p xtask -- lint  [--json PATH] [--quiet] [--root DIR]
       cargo run -p xtask -- audit [--json PATH] [--quiet] [--root DIR] [--write] [--deny-new-edges]

lint passes and exit-code bits:
  safety   (1)  unsafe without // SAFETY:
  panic    (2)  unwrap/expect/panic! in production modules
  ordering (4)  Ordering:: without // ORDERING: (outside atomics.rs)
  cast     (8)  as u32/usize in hot paths without // CAST:
  alloc   (16)  heap allocation in pooled operator hot paths without // ALLOC-OK(reason)

audit passes and exit-code bits:
  lock-order (1)  lock-order cycles, unannotated edges, blocking while locked
  atomics    (2)  incoherent atomic protocols (Release with no Acquire, ...)
  taxonomy   (4)  ErrorCode drift between protocol.rs, metrics.rs, DESIGN.md
  --write           regenerate audit/lock_order.json and audit/atomics.json
  --deny-new-edges  fail on lock-order edges absent from the committed inventory

exit 0 = clean, 32 = usage or I/O error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code as u8),
        Err(err) => {
            eprintln!("gunrock-lint: {err}");
            ExitCode::from(32)
        }
    }
}

struct CommonArgs {
    json_path: Option<PathBuf>,
    root: PathBuf,
    quiet: bool,
}

fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        _ => Err(format!("expected the `lint` or `audit` subcommand\n{USAGE}")),
    }
}

/// Parses the flags shared by both subcommands; returns `Ok(None)` for
/// `--help` (already printed), delegating unknown flags to `extra`.
fn parse_common<'a>(
    args: &'a [String],
    mut extra: impl FnMut(&'a str) -> Result<bool, String>,
) -> Result<Option<CommonArgs>, String> {
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(
                    it.next().ok_or_else(|| format!("--json needs a path\n{USAGE}"))?.into(),
                );
            }
            "--root" => {
                root = Some(
                    it.next().ok_or_else(|| format!("--root needs a dir\n{USAGE}"))?.into(),
                );
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if extra(other)? => {}
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    // default root: the workspace this binary was built from
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    Ok(Some(CommonArgs { json_path, root, quiet }))
}

fn run_lint(args: &[String]) -> Result<i32, String> {
    let Some(common) = parse_common(args, |_| Ok(false))? else { return Ok(0) };
    let run = xtask::lint_workspace(&common.root, &Config::default())
        .map_err(|e| format!("lint walk failed under {}: {e}", common.root.display()))?;
    let code = run.exit_code();
    if let Some(path) = common.json_path {
        let json = report::render_json(&run.findings, run.files_scanned, code);
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if !common.quiet || code != 0 {
        print!("{}", report::render_human(&run.findings, run.files_scanned));
    }
    Ok(code)
}

fn run_audit(args: &[String]) -> Result<i32, String> {
    let mut write = false;
    let mut deny = false;
    let Some(common) = parse_common(args, |arg| match arg {
        "--write" => {
            write = true;
            Ok(true)
        }
        "--deny-new-edges" => {
            deny = true;
            Ok(true)
        }
        _ => Ok(false),
    })?
    else {
        return Ok(0);
    };
    let mut run = xtask::audit::audit_workspace(&common.root, &AuditConfig::default())
        .map_err(|e| format!("audit walk failed under {}: {e}", common.root.display()))?;
    if deny {
        let extra = xtask::audit::deny_new_edges(&common.root, &run);
        run.findings.extend(extra);
        run.findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    }
    let code = run.exit_code();
    if write {
        let dir = common.root.join("audit");
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        std::fs::write(dir.join("lock_order.json"), &run.lock_order_json)
            .map_err(|e| format!("cannot write audit/lock_order.json: {e}"))?;
        std::fs::write(dir.join("atomics.json"), &run.atomics_json)
            .map_err(|e| format!("cannot write audit/atomics.json: {e}"))?;
    }
    if let Some(path) = common.json_path {
        let json = report::render_json_for(
            "gunrock-audit/v1",
            &xtask::audit::AUDIT_PASS_NAMES,
            &run.findings,
            run.files_scanned,
            code,
        );
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if !common.quiet || code != 0 {
        print!(
            "{}",
            report::render_human_for(
                "gunrock-audit",
                &xtask::audit::AUDIT_PASS_NAMES,
                &run.findings,
                run.files_scanned,
            )
        );
    }
    Ok(code)
}
