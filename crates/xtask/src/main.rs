//! `cargo run -p xtask -- lint [--json PATH] [--quiet] [--root DIR]`
//!
//! Exit code is a bitmask of failing passes (safety=1, panic=2,
//! ordering=4, cast=8, alloc=16); 0 means the tree is clean, 32 means
//! usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::passes::Config;
use xtask::report;

const USAGE: &str = "usage: cargo run -p xtask -- lint [--json PATH] [--quiet] [--root DIR]

passes and exit-code bits:
  safety   (1)  unsafe without // SAFETY:
  panic    (2)  unwrap/expect/panic! in production modules
  ordering (4)  Ordering:: without // ORDERING: (outside atomics.rs)
  cast     (8)  as u32/usize in hot paths without // CAST:
  alloc   (16)  heap allocation in pooled operator hot paths without // ALLOC-OK(reason)
exit 0 = clean, 32 = usage or I/O error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code as u8),
        Err(err) => {
            eprintln!("gunrock-lint: {err}");
            ExitCode::from(32)
        }
    }
}

fn run(args: &[String]) -> Result<i32, String> {
    if args.first().map(String::as_str) != Some("lint") {
        return Err(format!("expected the `lint` subcommand\n{USAGE}"));
    }
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(
                    it.next().ok_or_else(|| format!("--json needs a path\n{USAGE}"))?.into(),
                );
            }
            "--root" => {
                root = Some(
                    it.next().ok_or_else(|| format!("--root needs a dir\n{USAGE}"))?.into(),
                );
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    // default root: the workspace this binary was built from
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let run = xtask::lint_workspace(&root, &Config::default())
        .map_err(|e| format!("lint walk failed under {}: {e}", root.display()))?;
    let code = run.exit_code();
    if let Some(path) = json_path {
        let json = report::render_json(&run.findings, run.files_scanned, code);
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if !quiet || code != 0 {
        print!("{}", report::render_human(&run.findings, run.files_scanned));
    }
    Ok(code)
}
