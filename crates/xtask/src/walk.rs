//! Source-tree walker: every `.rs` file under `crates/`, excluding
//! build output, vendored shims, and the linter's own test fixtures.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects workspace `.rs` files under `root/crates`, returned as
/// `/`-separated paths relative to `root`, sorted for deterministic
/// reports.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect(&root.join("crates"), root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // target: build output; fixtures: deliberately-bad lint inputs
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative_unix(&path, root));
        }
    }
    Ok(())
}

fn relative_unix(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("workspace walk");
        assert!(files.iter().any(|f| f == "crates/xtask/src/walk.rs"));
        assert!(files.iter().any(|f| f == "crates/engine/src/unsafe_slice.rs"));
        assert!(!files.iter().any(|f| f.contains("/fixtures/")));
        assert!(!files.iter().any(|f| f.contains("/target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
