// Taxonomy fixture: a two-code enum whose `internal` code is neither
// counted in the fixture metrics.rs nor documented in the fixture
// DESIGN.md, while metrics.rs also counts a code the enum does not
// define. Never compiled.

pub enum ErrorCode {
    BadRequest,
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
        }
    }
}
