// Taxonomy fixture counter table: misses `internal` and counts a code
// the enum does not define. Never compiled.

pub const CODE_COUNTERS: [(&str, &str); 2] = [
    ("bad-request", "rejected_bad_request"),
    ("gone-fishing", "rejected_gone_fishing"),
];
