// Deliberately-bad lock-order fixture: one annotated edge, one
// unannotated reverse edge (which also closes a cycle), and a
// `Condvar::wait` that sleeps while holding a second lock. Never
// compiled; the audit self-tests point `gunrock-audit` here with
// --root and assert each finding fires with a file:line.

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
    cv: Condvar,
}

impl Pair {
    pub fn forward(&self) {
        // LOCK-ORDER: lockcycle::Pair.a -> lockcycle::Pair.b
        let ga = self.a.lock();
        let gb = self.b.lock();
        *gb += *ga;
    }

    pub fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga += *gb;
    }

    pub fn waits_holding_both(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let _woken = self.cv.wait(ga);
        drop(gb);
    }
}
