// Clean lint fixture: the same shapes as scan.rs, each carrying the
// justification its pass demands. The self-tests assert zero findings.

pub fn justified_unsafe(p: *mut u8) {
    // SAFETY: fixture — the caller hands us a valid, exclusive pointer.
    unsafe { *p = 0 };
}

/// Fixture for the `# Safety` doc-section form.
///
/// # Safety
/// `p` must be valid for writes.
pub unsafe fn justified_unsafe_fn(p: *mut u8) {
    // SAFETY: contract forwarded from this fn's own `# Safety` section.
    unsafe { *p = 1 };
}

pub fn justified_fallible(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn allowed_panic() {
    // LINT-ALLOW(panic): fixture — aborting is this function's contract.
    panic!("by design");
}

// ORDERING: Relaxed is sufficient; the counter is advisory telemetry.
pub fn justified_ordering(a: &std::sync::atomic::AtomicU32) -> u32 {
    a.load(std::sync::atomic::Ordering::Relaxed)
}

pub fn justified_cast(x: u64) -> u32 {
    assert!(x < u32::MAX as u64);
    // CAST: asserted just above.
    x as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
