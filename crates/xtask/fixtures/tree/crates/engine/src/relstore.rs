// Deliberately-bad atomics fixture: a Release store whose field has no
// Acquire-side reader anywhere, and a Relaxed load whose ORDERING note
// claims a pairing Relaxed cannot provide. Never compiled; the audit
// self-tests assert both findings fire with a file:line.

pub struct Publisher {
    ready: AtomicBool,
}

impl Publisher {
    pub fn publish(&self) {
        // ORDERING: Release — publishes the staged result buffer.
        self.ready.store(true, Ordering::Release);
    }

    pub fn poll(&self) -> bool {
        // ORDERING: Relaxed — pairs with the Release in `publish`.
        self.ready.load(Ordering::Relaxed)
    }
}
