// Deliberately-bad lint fixture: one violation per pass. Never compiled;
// the walker in the real workspace skips `fixtures/` directories, and the
// self-tests point the linter here with --root to assert every pass fires
// with a file:line.

pub fn unjustified_unsafe(p: *mut u8) {
    unsafe { *p = 0 };
}

pub fn unjustified_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn unjustified_ordering(a: &std::sync::atomic::AtomicU32) -> u32 {
    a.load(std::sync::atomic::Ordering::Relaxed)
}

pub fn unjustified_cast(x: u64) -> u32 {
    x as u32
}
