//! End-to-end self-tests for `gunrock-lint`: run the real binary against
//! the fixture tree (one violation per pass, plus justified twins) and
//! against the live workspace, asserting exit codes, file:line output,
//! and the JSON report schema.

use std::path::{Path, PathBuf};
use std::process::Command;

fn xtask_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn gunrock-lint")
}

#[test]
fn bad_fixture_trips_every_pass_with_file_and_line() {
    let out = run_lint(&xtask_dir().join("fixtures/tree"), &[]);
    // all four passes fire: safety|panic|ordering|cast = 1|2|4|8
    assert_eq!(out.status.code(), Some(15), "exit code should OR all pass bits");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("crates/engine/src/scan.rs:7: [safety]"),
        "missing safety finding with file:line in:\n{text}"
    );
    assert!(text.contains("crates/engine/src/scan.rs:11: [panic]"), "{text}");
    assert!(text.contains("crates/engine/src/scan.rs:15: [ordering]"), "{text}");
    assert!(text.contains("crates/engine/src/scan.rs:19: [cast]"), "{text}");
    // the justified twins in clean.rs must not appear
    assert!(!text.contains("clean.rs"), "clean fixture was flagged:\n{text}");
}

#[test]
fn json_report_is_schema_tagged_and_counts_match() {
    let json_path =
        std::env::temp_dir().join(format!("gunrock-lint-selftest-{}.json", std::process::id()));
    let out = run_lint(
        &xtask_dir().join("fixtures/tree"),
        &["--quiet", "--json", json_path.to_str().expect("utf8 temp path")],
    );
    assert_eq!(out.status.code(), Some(15));
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    let _ = std::fs::remove_file(&json_path);
    assert!(json.contains("\"schema\": \"gunrock-lint/v1\""));
    assert!(json.contains("\"exit_code\": 15"));
    assert!(json.contains("\"safety\": 1"));
    assert!(json.contains("\"panic\": 1"));
    assert!(json.contains("\"ordering\": 1"));
    assert!(json.contains("\"cast\": 1"));
    assert!(json.contains("\"file\": \"crates/engine/src/scan.rs\""));
}

#[test]
fn usage_errors_exit_32() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("spawn gunrock-lint");
    assert_eq!(out.status.code(), Some(32));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn live_workspace_is_clean() {
    // the acceptance gate CI enforces: the real tree lints clean
    let root = xtask_dir().join("../..");
    let out = run_lint(&root, &[]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "workspace has lint findings:\n{text}");
}

#[test]
fn library_api_agrees_with_binary_on_fixtures() {
    use xtask::passes::{Config, Pass};
    let run = xtask::lint_workspace(&xtask_dir().join("fixtures/tree"), &Config::default())
        .expect("fixture walk");
    // the lint pair (scan.rs/clean.rs) plus the four audit fixtures
    assert_eq!(run.files_scanned, 6);
    assert_eq!(run.exit_code(), 15);
    let passes: Vec<Pass> = run.findings.iter().map(|f| f.pass).collect();
    assert_eq!(passes, vec![Pass::Safety, Pass::Panic, Pass::Ordering, Pass::Cast]);
}
