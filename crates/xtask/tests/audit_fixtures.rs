//! End-to-end self-tests for `gunrock-audit`: run the real binary
//! against the fixture tree (a seeded lock cycle, a Release store with
//! no Acquire reader, an unmapped error code) and against the live
//! workspace, asserting exit codes, file:line output, the JSON report
//! schema, and that the committed inventories are byte-reproducible.

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::audit::{audit_workspace, deny_new_edges, AuditConfig};

fn xtask_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_audit(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("audit")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn gunrock-audit")
}

#[test]
fn bad_fixture_trips_every_audit_pass_with_file_and_line() {
    let out = run_audit(&xtask_dir().join("fixtures/tree"), &[]);
    // all three passes fire: lock-order|atomics|taxonomy = 1|2|4
    assert_eq!(out.status.code(), Some(7), "exit code should OR all pass bits");
    let text = String::from_utf8_lossy(&out.stdout);

    // lock-order: the unannotated reverse edge, the cycle it closes, and
    // the wait that sleeps holding a second lock
    assert!(
        text.contains("crates/engine/src/lockcycle.rs:23: [lock-order]"),
        "missing unannotated-edge finding in:\n{text}"
    );
    assert!(text.contains("lockcycle::Pair.b -> lockcycle::Pair.a"), "{text}");
    assert!(text.contains("lock-order cycle"), "{text}");
    assert!(text.contains("crates/engine/src/lockcycle.rs:30: [lock-order]"), "{text}");
    assert!(text.contains("Condvar::wait"), "{text}");

    // atomics: the unpaired Release and the overclaiming Relaxed note
    assert!(text.contains("crates/engine/src/relstore.rs:13: [atomics]"), "{text}");
    assert!(text.contains("no Acquire-or-stronger reader"), "{text}");
    assert!(text.contains("crates/engine/src/relstore.rs:18: [atomics]"), "{text}");
    assert!(text.contains("pairs with"), "{text}");

    // taxonomy: uncounted code, phantom counter row, undocumented code
    assert!(text.contains("crates/server/src/metrics.rs:4: [taxonomy]"), "{text}");
    assert!(text.contains("\"internal\" is not counted"), "{text}");
    assert!(text.contains("crates/server/src/metrics.rs:6: [taxonomy]"), "{text}");
    assert!(text.contains("gone-fishing"), "{text}");
    assert!(text.contains("DESIGN.md:1: [taxonomy]"), "{text}");

    // the lint fixtures and the clean twins stay out of the audit
    assert!(!text.contains("clean.rs"), "clean fixture was flagged:\n{text}");
    assert!(!text.contains("scan.rs"), "lint fixture tripped the audit:\n{text}");
}

#[test]
fn json_report_is_schema_tagged_and_counts_match() {
    let json_path = std::env::temp_dir()
        .join(format!("gunrock-audit-selftest-{}.json", std::process::id()));
    let out = run_audit(
        &xtask_dir().join("fixtures/tree"),
        &["--quiet", "--json", json_path.to_str().expect("utf8 temp path")],
    );
    assert_eq!(out.status.code(), Some(7));
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    let _ = std::fs::remove_file(&json_path);
    assert!(json.contains("\"schema\": \"gunrock-audit/v1\""), "{json}");
    assert!(json.contains("\"exit_code\": 7"), "{json}");
    assert!(json.contains("\"lock-order\": 3"), "{json}");
    assert!(json.contains("\"atomics\": 2"), "{json}");
    assert!(json.contains("\"taxonomy\": 3"), "{json}");
    assert!(json.contains("\"file\": \"crates/engine/src/lockcycle.rs\""), "{json}");
}

#[test]
fn fixture_inventories_match_committed_snapshots() {
    let root = xtask_dir().join("fixtures/tree");
    let run = audit_workspace(&root, &AuditConfig::default()).expect("fixture walk");
    let lock = std::fs::read_to_string(root.join("audit/lock_order.json"))
        .expect("committed lock json");
    let atomics = std::fs::read_to_string(root.join("audit/atomics.json"))
        .expect("committed atomics json");
    assert_eq!(run.lock_order_json, lock, "regenerate with `cargo xtask audit --write`");
    assert_eq!(run.atomics_json, atomics, "regenerate with `cargo xtask audit --write`");
    // the seeded reverse edge is present and known-unannotated
    assert!(lock.contains("\"annotated\": false"), "{lock}");
    assert!(atomics.contains("\"role\": \"release-store\""), "{atomics}");
}

#[test]
fn live_workspace_audits_clean_and_inventories_are_current() {
    // the acceptance gate CI enforces: the real tree audits clean and the
    // committed inventories reproduce byte-identically
    let root = xtask_dir().join("../..");
    let run = audit_workspace(&root, &AuditConfig::default()).expect("workspace walk");
    assert!(run.findings.is_empty(), "workspace has audit findings:\n{:#?}", run.findings);
    let lock = std::fs::read_to_string(root.join("audit/lock_order.json"))
        .expect("committed lock json");
    let atomics = std::fs::read_to_string(root.join("audit/atomics.json"))
        .expect("committed atomics json");
    assert_eq!(run.lock_order_json, lock, "regenerate with `cargo xtask audit --write`");
    assert_eq!(run.atomics_json, atomics, "regenerate with `cargo xtask audit --write`");
    assert!(deny_new_edges(&root, &run).is_empty(), "uncommitted lock-order edges");
}

#[test]
fn deny_new_edges_flags_a_missing_inventory_and_passes_a_current_one() {
    // fixture tree: committed inventory matches the computed edges
    let root = xtask_dir().join("fixtures/tree");
    let run = audit_workspace(&root, &AuditConfig::default()).expect("fixture walk");
    assert!(deny_new_edges(&root, &run).is_empty());

    // scratch tree with a nested acquisition but no committed inventory
    let scratch =
        std::env::temp_dir().join(format!("gunrock-audit-deny-{}", std::process::id()));
    let src = scratch.join("crates/engine/src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("nest.rs"),
        "pub struct N {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n\
         impl N {\n    pub fn both(&self) {\n        let ga = self.a.lock();\n        \
         let gb = self.b.lock();\n        *gb += *ga;\n    }\n}\n",
    )
    .expect("scratch source");
    let run = audit_workspace(&scratch, &AuditConfig::default()).expect("scratch walk");
    assert_eq!(run.lock_edges.len(), 1, "{:?}", run.lock_edges);
    let findings = deny_new_edges(&scratch, &run);
    let _ = std::fs::remove_dir_all(&scratch);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("missing"), "{}", findings[0].message);
}

#[test]
fn usage_errors_exit_32() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--frobnicate"])
        .output()
        .expect("spawn gunrock-audit");
    assert_eq!(out.status.code(), Some(32));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}
