//! `gunrock` binary entry point; all logic lives in [`gunrock_cli`].
fn main() {
    std::process::exit(gunrock_cli::run(std::env::args().skip(1).collect()))
}
