//! Command-line driver for the Gunrock reproduction.
//!
//! ```text
//! gunrock <primitive> [--graph FILE | --gen KIND --scale N] [options]
//!
//! primitives: bfs sssp bc cc pagerank mst kcore triangles labelprop stats
//! generators: kron soc roadnet bitcoin random smallworld
//!
//! options:
//!   --graph FILE       load a graph (.bin, .mtx, or edge list)
//!   --gen KIND         generate a synthetic graph (default: kron)
//!   --scale N          generator size exponent (default: 12)
//!   --seed N           generator seed (default: 42)
//!   --src N            source vertex for bfs/sssp/bc (default: 0)
//!   --sources N        bfs only: run N lane-packed traversals (1..=64)
//!                      as one bit-parallel MS-BFS batch, sources taking
//!                      consecutive ids from --src (mod |V|); reports
//!                      aggregate sources/sec, and checkpoints resume
//!                      with the same flag
//!   --weights LO..HI   random edge weights (default: 1..64 for sssp/mst)
//!   --reorder          relabel vertices degree-descending (hub clustering)
//!                      before running; results are mapped back to the
//!                      original ids, so output is unchanged — only the
//!                      bitmap-frontier locality differs. Resume a
//!                      reordered run with the same flag.
//!   --verify           cross-check the result against the serial oracle
//!   --top K            print the top-K vertices by score (default: 5)
//!   --max-iters N      stop after N bulk-synchronous iterations
//!   --timeout-ms N     stop after N milliseconds of wall clock
//!   --stats-json PATH  write the per-operator instrumentation trace
//!                      (StepRecords + direction switches + buffer-pool
//!                      counters) as JSON
//!   --serial-threshold N  frontiers whose size and neighbor work are both
//!                      at most N run the single-threaded advance fast
//!                      path (0 disables; default: 4096)
//!   --retries N        retry recoverable advance failures N times before
//!                      falling back to thread_mapped (default: 0)
//!   --memory-budget B  cap outstanding pooled bytes at B (suffixes k/m/g;
//!                      0: unlimited). Over-budget runs degrade along the
//!                      documented ladder or fail with a structured
//!                      BudgetExceeded — never an allocator abort.
//!   --watchdog-ms N    hung-run watchdog: a run silent for N ms is
//!                      cancelled, and killed N/2 ms later (0: disabled)
//!   --inject-faults SPEC  seeded fault injection; SPEC is a comma list of
//!                      panic=RATE, alloc=RATE, pool-alloc=RATE, io=RATE,
//!                      stall=RATE
//!   --fault-seed N     seed for the fault schedule (default: 42)
//!   --checkpoint-every N  snapshot state every N iterations (0: only on
//!                      a guard trip) into --checkpoint-dir
//!   --checkpoint-dir D directory for checkpoint files (default: .)
//!   --resume PATH      resume bfs/sssp/bc/cc/pagerank from a
//!                      gunrock-ckpt/v1 snapshot (same graph flags!)
//! ```
//!
//! Exit codes: `0` converged, `1` error (bad arguments, unreadable or
//! malformed graph, failed verification, a faulted run), `2` a guard
//! tripped and the printed result is partial — if checkpointing was on,
//! the partial run leaves a resumable snapshot behind.
//!
//! The dispatch logic lives in this library crate so it can be unit
//! tested; `main` is a one-liner.

#![warn(missing_docs)]

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::prelude::*;
use gunrock_graph::{io, stats};
use std::collections::HashMap;
use std::sync::Arc;

/// Usage text printed for `--help` and argument errors.
pub const USAGE: &str = "\
usage: gunrock <primitive> [--graph FILE | --gen KIND --scale N] [options]

primitives: bfs sssp bc cc pagerank mst kcore triangles labelprop stats
generators: kron soc roadnet bitcoin random smallworld
service:    gunrock serve --help  |  gunrock query --help

options:
  --graph FILE       load a graph (.bin, .mtx, or edge list)
  --gen KIND         generate a synthetic graph (default: kron)
  --scale N          generator size exponent (default: 12)
  --seed N           generator seed (default: 42)
  --src N            source vertex for bfs/sssp/bc (default: 0)
  --sources N        bfs: one lane-packed MS-BFS batch of N traversals
                     (1..=64) from consecutive ids at --src; prints
                     aggregate sources/sec
  --weights LO..HI   random edge weights (default: 1..64 for sssp/mst)
  --reorder          degree-descending relabeling (results keep original ids)
  --verify           cross-check against the serial oracle
  --top K            print the top-K vertices by score (default: 5)
  --max-iters N      stop after N bulk-synchronous iterations (exit 2)
  --timeout-ms N     stop after N milliseconds of wall clock (exit 2)
  --stats-json PATH  write the per-operator trace (see DESIGN.md) as JSON
  --serial-threshold N  small-frontier serial fast-path cutoff (0 disables)
  --retries N        retry recoverable advance failures N times (default: 0)
  --memory-budget B  cap outstanding pooled bytes (k/m/g suffixes; 0: unlimited)
  --watchdog-ms N    cancel a silent run after N ms, kill at 1.5N (0: off)
  --inject-faults SPEC  seeded faults: panic=RATE,alloc=RATE,pool-alloc=RATE,io=RATE,stall=RATE
  --fault-seed N     seed for the fault schedule (default: 42)
  --checkpoint-every N  snapshot every N iterations (0: only on guard trip)
  --checkpoint-dir D directory for checkpoint files (default: .)
  --resume PATH      resume from a gunrock-ckpt/v1 snapshot (same graph flags)";

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// The primitive (or `stats`) to run.
    pub primitive: String,
    /// `--flag value` options.
    pub flags: HashMap<String, String>,
    /// Cross-check results against the serial oracle.
    pub verify: bool,
    /// Run on the degree-descending relabeled graph (results are mapped
    /// back to original ids before printing or verification).
    pub reorder: bool,
}

/// Parses raw arguments; `Err` carries a message for the user.
pub fn parse_args(raw: Vec<String>) -> Result<Args, String> {
    let mut it = raw.into_iter().peekable();
    let primitive = match it.next() {
        Some(p) if p == "--help" || p == "-h" => return Err(USAGE.to_string()),
        Some(p) if !p.starts_with('-') => p,
        Some(p) => return Err(format!("expected a primitive, got {p:?}\n\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    };
    let mut flags = HashMap::new();
    let mut verify = false;
    let mut reorder = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify" => verify = true,
            "--reorder" => reorder = true,
            flag if flag.starts_with("--") => {
                let value = it.next().ok_or_else(|| format!("flag {flag} requires a value"))?;
                flags.insert(flag.trim_start_matches("--").to_string(), value);
            }
            other => return Err(format!("unexpected argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Args { primitive, flags, verify, reorder })
}

impl Args {
    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}")),
            None => Ok(default),
        }
    }

    /// Builds the execution policy from `--max-iters` / `--timeout-ms`.
    pub fn policy(&self) -> Result<RunPolicy, String> {
        let mut policy = RunPolicy::unbounded();
        if let Some(v) = self.flags.get("max-iters") {
            let cap: u32 =
                v.parse().map_err(|_| format!("--max-iters expects a number, got {v:?}"))?;
            policy = policy.max_iterations(cap);
        }
        if let Some(v) = self.flags.get("timeout-ms") {
            let ms: u64 =
                v.parse().map_err(|_| format!("--timeout-ms expects a number, got {v:?}"))?;
            policy = policy.wall_clock_budget(std::time::Duration::from_millis(ms));
        }
        Ok(policy)
    }

    /// Builds the fault schedule from `--inject-faults` / `--fault-seed`.
    pub fn fault_plan(&self) -> Result<Option<FaultPlan>, String> {
        let seed = self.get_usize("fault-seed", 42)? as u64;
        match self.flags.get("inject-faults") {
            None => Ok(None),
            Some(spec) => FaultPlan::parse(spec, seed)
                .map(Some)
                .map_err(|e| format!("--inject-faults: {e}")),
        }
    }

    /// Builds the retry budget from `--retries`.
    pub fn retry_policy(&self) -> Result<RetryPolicy, String> {
        Ok(RetryPolicy::retries(self.get_usize("retries", 0)? as u32))
    }

    /// Builds the snapshot policy from `--checkpoint-every` /
    /// `--checkpoint-dir`. `--checkpoint-every 0` still snapshots when a
    /// guard trips, so a timed-out run can be resumed.
    pub fn checkpoint_policy(&self) -> Result<Option<CheckpointPolicy>, String> {
        let dir = self.flags.get("checkpoint-dir").map(String::as_str);
        match self.flags.get("checkpoint-every") {
            None if dir.is_some() => {
                Err("--checkpoint-dir requires --checkpoint-every".to_string())
            }
            None => Ok(None),
            Some(v) => {
                let every: u32 = v
                    .parse()
                    .map_err(|_| format!("--checkpoint-every expects a number, got {v:?}"))?;
                Ok(Some(CheckpointPolicy::new(every, dir.unwrap_or("."))))
            }
        }
    }

    fn weights(&self) -> Result<Option<(u32, u32)>, String> {
        match self.flags.get("weights") {
            None => Ok(None),
            Some(spec) => {
                let (lo, hi) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--weights expects LO..HI, got {spec:?}"))?;
                let lo = lo.parse().map_err(|_| format!("bad weight {lo:?}"))?;
                let hi = hi.parse().map_err(|_| format!("bad weight {hi:?}"))?;
                if lo > hi || lo == 0 {
                    return Err(format!("--weights needs 1 <= LO <= HI, got {spec:?}"));
                }
                Ok(Some((lo, hi)))
            }
        }
    }
}

/// Builds the input graph from `--graph` or `--gen`.
pub fn load_or_generate(args: &Args) -> Result<Csr, String> {
    if let Some(path) = args.flags.get("graph") {
        return io::load_graph(std::path::Path::new(path))
            .map_err(|e| format!("cannot load {path}: {e}"));
    }
    let scale = args.get_usize("scale", 12)? as u32;
    let seed = args.get_usize("seed", 42)? as u64;
    let kind = args.flags.get("gen").map(String::as_str).unwrap_or("kron");
    // sssp/mst want weights by default
    let default_weighted = matches!(args.primitive.as_str(), "sssp" | "mst");
    let weights = args.weights()?.or(if default_weighted { Some((1, 64)) } else { None });
    let mut builder = GraphBuilder::new();
    if let Some((lo, hi)) = weights {
        builder = builder.random_weights(lo, hi, seed);
    }
    let coo =
        generators::from_spec(kind, scale, seed).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    Ok(builder.build(coo))
}

fn top_k(scores: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut v: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// The primitives `execute` understands.
pub const PRIMITIVES: [&str; 10] =
    ["bfs", "sssp", "bc", "cc", "pagerank", "mst", "kcore", "triangles", "labelprop", "stats"];

/// Executes the parsed command, printing results. `Ok` carries how the
/// enact loop ended: anything but [`RunOutcome::Converged`] means the
/// printed result is partial (exit code 2).
pub fn execute(args: &Args) -> Result<RunOutcome, String> {
    // reject unknown primitives before paying for graph construction
    if !PRIMITIVES.contains(&args.primitive.as_str()) {
        return Err(format!("unknown primitive {:?}\n\n{USAGE}", args.primitive));
    }
    let mut policy = args.policy()?;
    let retry = args.retry_policy()?;
    // Resource governance: an optional budget on outstanding pooled
    // bytes and an optional hung-run watchdog. The watchdog shares the
    // guard's cancel flag — a stalled run is cancelled cooperatively
    // first, and only killed (via the heartbeat's kill flag, which the
    // guard also polls) if it stays silent through the grace period.
    let budget = match args.flags.get("memory-budget") {
        None => None,
        Some(v) => {
            let bytes = gunrock_engine::budget::parse_bytes(v)
                .map_err(|e| format!("--memory-budget: {e}"))?;
            (bytes > 0).then(|| Arc::new(gunrock_engine::budget::MemoryBudget::new(bytes)))
        }
    };
    let watchdog_ms = args.get_usize("watchdog-ms", 0)? as u64;
    let watchdog = (watchdog_ms > 0).then(|| {
        gunrock_engine::watchdog::Watchdog::new(gunrock_engine::watchdog::WatchdogConfig::new(
            std::time::Duration::from_millis(watchdog_ms),
        ))
    });
    let heartbeat =
        watchdog.as_ref().map(|_| Arc::new(gunrock_engine::watchdog::Heartbeat::new()));
    let _watch = match (&watchdog, &heartbeat) {
        (Some(dog), Some(hb)) => {
            let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
            policy = policy.cancel_flag(Arc::clone(&cancel));
            Some(dog.watch(
                Arc::clone(hb),
                cancel,
                Box::new(|| eprintln!("gunrock: watchdog killed a hung run")),
            ))
        }
        _ => None,
    };
    let ckpt_policy = args.checkpoint_policy()?;
    let injector = args.fault_plan()?.map(|plan| Arc::new(FaultInjector::new(plan)));
    // io faults are injected at the loader, before a Context exists, so
    // they go through a process-wide hook; the RAII guard uninstalls it
    // on every exit path (tests share the process)
    let _read_hook = injector
        .as_ref()
        .filter(|inj| inj.plan().rate(FaultKind::Io) > 0.0)
        .map(|inj| install_read_faults(Arc::clone(inj)));
    // `bfs --sources` runs (and snapshots/resumes as) the lane-packed
    // msbfs primitive; its checkpoints carry that name
    let batched = args.primitive == "bfs" && args.flags.contains_key("sources");
    let ckpt_name = if batched { "msbfs" } else { args.primitive.as_str() };
    let resume_ckpt = match args.flags.get("resume") {
        None => None,
        Some(path) => {
            if !matches!(args.primitive.as_str(), "bfs" | "sssp" | "bc" | "cc" | "pagerank") {
                return Err(format!("--resume does not support {:?}", args.primitive));
            }
            let ckpt = Checkpoint::load(std::path::Path::new(path))
                .map_err(|e| format!("cannot resume from {path}: {e}"))?;
            if ckpt.primitive() != ckpt_name {
                return Err(format!(
                    "checkpoint {path} holds a {} run, not {ckpt_name}",
                    ckpt.primitive(),
                ));
            }
            Some(ckpt)
        }
    };
    let mut g = load_or_generate(args)?;
    // --reorder: run on the degree-descending relabeled graph (hub
    // clustering, so the bitmap pull sweep concentrates its hot words);
    // `orig` keeps the input graph so --verify oracles run on it and
    // compare against results restored to original ids
    let relab = args.reorder.then(|| degree_descending(&g));
    let orig = relab.as_ref().map(|r| {
        let relabeled = r.apply(&g);
        std::mem::replace(&mut g, relabeled)
    });
    let g = g;
    let og = orig.as_ref().unwrap_or(&g);
    let n = g.num_vertices();
    let mut src = args.get_usize("src", 0)? as u32;
    // a checkpoint pins the source vertex; honor it so --verify compares
    // the resumed run against the right oracle (the snapshot stores the
    // id the algorithm ran with, so map it back under --reorder)
    if let Some(ckpt) = &resume_ckpt {
        // msbfs snapshots pin a whole lane vector instead; the resumed
        // result reports them, so nothing to do here for a batch
        if !batched && matches!(args.primitive.as_str(), "bfs" | "sssp" | "bc") {
            if let Some(&s) = ckpt.u32s("scalars").ok().and_then(<[u32]>::first) {
                src = relab.as_ref().map_or(s, |r| r.old_of_new(s));
            }
        }
    }
    if matches!(args.primitive.as_str(), "bfs" | "sssp" | "bc") && src as usize >= n {
        return Err(format!("--src {src} out of range (graph has {n} vertices)"));
    }
    // the source id the algorithms see; printing and oracles use `src`
    let isrc = relab.as_ref().map_or(src, |r| r.new_of_old(src));
    let k = args.get_usize("top", 5)?;
    println!(
        "graph: {} vertices, {} directed edges, max degree {}",
        n,
        g.num_edges(),
        g.max_degree()
    );
    let mut outcome = RunOutcome::Converged;
    // --verify against a converged oracle only makes sense for a
    // converged run; a tripped guard skips it with a note instead of
    // reporting a spurious mismatch
    let verify = |o: RunOutcome| -> bool {
        if args.verify && !o.is_converged() {
            println!("skipping --verify: result is partial ({o})");
        }
        args.verify && o.is_converged()
    };
    let stats_path = args.flags.get("stats-json");
    let serial_threshold = match args.flags.get("serial-threshold") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--serial-threshold expects a number, got {v:?}"))?,
        ),
        None => None,
    };
    // install the instrumentation sink only when the trace is wanted,
    // then thread the robustness knobs into every context
    let instrument = |ctx| {
        let mut ctx = if stats_path.is_some() { Context::with_stats(ctx) } else { ctx };
        if let Some(t) = serial_threshold {
            ctx = ctx.with_config(gunrock_engine::EngineConfig::new().with_serial_threshold(t));
        }
        ctx = ctx.with_retry(retry);
        if let Some(cp) = &ckpt_policy {
            ctx = ctx.with_checkpoints(cp.clone());
        }
        if let Some(inj) = &injector {
            ctx = ctx.with_faults(Arc::clone(inj));
        }
        if let Some(b) = &budget {
            ctx = ctx.with_budget(Arc::clone(b));
        }
        if let Some(hb) = &heartbeat {
            ctx = ctx.with_heartbeat(Arc::clone(hb));
        }
        ctx
    };
    // dump the trace (faulted runs included), then surface a poisoned
    // run as the structured error that caused it (exit code 1)
    let dump = |ctx: &Context<'_>, elapsed: std::time::Duration, o: RunOutcome| {
        if let Some(path) = stats_path {
            dump_stats(path, &args.primitive, &g, elapsed, ctx, o)?;
        }
        if o == RunOutcome::Failed {
            return Err(match ctx.take_failure() {
                Some(e) => format!("run failed: {e}"),
                None => "run failed: operator fault (no recorded cause)".to_string(),
            });
        }
        Ok(())
    };
    match args.primitive.as_str() {
        "stats" => {
            let s = stats::graph_stats(&g);
            println!(
                "avg degree {:.2}, pseudo-diameter {}, {:.1}% of vertices below degree 128",
                s.avg_degree,
                s.pseudo_diameter,
                s.frac_degree_lt_128 * 100.0
            );
            let hist = stats::degree_histogram(&g);
            for (i, &c) in hist.iter().enumerate().filter(|&(_, &c)| c > 0) {
                let lo = if i == 0 { 0 } else { 1 << (i - 1) };
                let hi = if i == 0 { 0 } else { (1 << i) - 1 };
                println!("  degree {lo:>6}..{hi:<6} : {c} vertices");
            }
        }
        // `--sources N`: one bit-parallel MS-BFS batch instead of a
        // single traversal; lanes take consecutive ids from --src so the
        // batch is reproducible without listing 64 vertices
        "bfs" if batched => {
            let lanes = args.get_usize("sources", 1)?;
            if lanes == 0 || lanes > LANES {
                return Err(format!("--sources expects 1..={LANES}, got {lanes}"));
            }
            let ctx = instrument(Context::new(&g).with_reverse(&g).with_policy(policy));
            let r = match &resume_ckpt {
                Some(ckpt) => algos::msbfs_resume(&ctx, ckpt)
                    .map_err(|e| format!("resume failed: {e}"))?,
                None => {
                    let isrcs: Vec<VertexId> = (0..lanes)
                        .map(|l| ((src as usize + l) % n) as VertexId)
                        .map(|s| relab.as_ref().map_or(s, |rl| rl.new_of_old(s)))
                        .collect();
                    algos::msbfs(&ctx, &isrcs)
                }
            };
            // original-id sources for printing and oracles (a resumed
            // batch pins its own lanes, so recover them from the result)
            let osrcs: Vec<VertexId> = r
                .sources
                .iter()
                .map(|&s| relab.as_ref().map_or(s, |rl| rl.old_of_new(s)))
                .collect();
            let reached = r.depths.iter().filter(|&&d| d != INFINITY).count();
            println!(
                "msbfs x{} from {}: reached {} vertex-lanes in {} levels, {:.2} ms, {:.1} MTEPS, {:.0} sources/sec",
                r.lanes(),
                osrcs.first().copied().unwrap_or(src),
                reached,
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3,
                r.edges_examined as f64 / r.elapsed.as_secs_f64() / 1e6,
                r.sources_per_second()
            );
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                for (l, &s) in osrcs.iter().enumerate() {
                    let what = format!("msbfs lane {l} depths");
                    verify_eq(&restored(&relab, r.lane_depths(l)), &serial::bfs(og, s), &what)?;
                }
            }
        }
        "bfs" => {
            let ctx = instrument(Context::new(&g).with_reverse(&g).with_policy(policy));
            let opts = algos::BfsOptions::direction_optimized();
            let r = match &resume_ckpt {
                Some(ckpt) => algos::bfs_resume(&ctx, opts, ckpt)
                    .map_err(|e| format!("resume failed: {e}"))?,
                None => algos::bfs(&ctx, isrc, opts),
            };
            let reached = r.labels.iter().filter(|&&l| l != INFINITY).count();
            println!(
                "bfs from {src}: reached {reached} vertices in {} levels ({} pull), {:.2} ms, {:.1} MTEPS",
                r.iterations,
                r.pull_iterations,
                r.elapsed.as_secs_f64() * 1e3,
                r.mteps()
            );
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                verify_eq(&restored(&relab, &r.labels), &serial::bfs(og, src), "bfs depths")?;
            }
        }
        "sssp" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let r = match &resume_ckpt {
                Some(ckpt) => algos::sssp_resume(&ctx, algos::SsspOptions::default(), ckpt)
                    .map_err(|e| format!("resume failed: {e}"))?,
                None => algos::sssp(&ctx, isrc, algos::SsspOptions::default()),
            };
            let reached = r.dist.iter().filter(|&&d| d != INFINITY).count();
            println!(
                "sssp from {src}: reached {reached} vertices, {} iterations, {:.2} ms, {:.1} MTEPS",
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3,
                r.mteps()
            );
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                verify_eq(
                    &restored(&relab, &r.dist),
                    &serial::dijkstra(og, src),
                    "sssp distances",
                )?;
            }
        }
        "bc" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let r = match &resume_ckpt {
                Some(ckpt) => algos::bc_resume(&ctx, algos::BcOptions::default(), ckpt)
                    .map_err(|e| format!("resume failed: {e}"))?,
                None => algos::bc(&ctx, isrc, algos::BcOptions::default()),
            };
            let vals = restored(&relab, &r.bc_values);
            println!(
                "bc from {src}: {} iterations, {:.2} ms; top dependency scores:",
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3
            );
            for (v, s) in top_k(&vals, k) {
                println!("  #{v:<8} {s:.2}");
            }
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                let want = serial::brandes_single_source(og, src);
                for (i, (a, b)) in vals.iter().zip(&want).enumerate() {
                    if (a - b).abs() > 1e-6 {
                        return Err(format!("VERIFY FAILED: bc[{i}] {a} vs oracle {b}"));
                    }
                }
                println!("verified against serial Brandes");
            }
        }
        "cc" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let r = match &resume_ckpt {
                Some(ckpt) => {
                    algos::cc_resume(&ctx, ckpt).map_err(|e| format!("resume failed: {e}"))?
                }
                None => algos::cc(&ctx),
            };
            println!(
                "cc: {} components in {} iterations, {:.2} ms",
                r.num_components,
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3
            );
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                let want = serial::connected_components(og);
                match &relab {
                    // component representatives depend on the id order, so
                    // compare the partitions under a canonical labeling
                    Some(rl) => verify_eq(
                        &canonical_components(&rl.restore_ids(&r.labels)),
                        &canonical_components(&want),
                        "component labels",
                    )?,
                    None => verify_eq(&r.labels, &want, "component labels")?,
                }
            }
        }
        "pagerank" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let opts = algos::PrOptions { epsilon: 1e-10, ..Default::default() };
            let r = match &resume_ckpt {
                Some(ckpt) => algos::pagerank_resume(&ctx, opts, ckpt)
                    .map_err(|e| format!("resume failed: {e}"))?,
                None => algos::pagerank(&ctx, opts),
            };
            let scores = restored(&relab, &r.scores);
            println!(
                "pagerank: {} iterations, {:.2} ms; top scores:",
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3
            );
            for (v, s) in top_k(&scores, k) {
                println!("  #{v:<8} {s:.6}");
            }
            outcome = r.outcome;
            dump(&ctx, r.elapsed, r.outcome)?;
            if verify(r.outcome) {
                let want = serial::pagerank(og, 0.85, 1e-12, 2000);
                for (i, (a, b)) in scores.iter().zip(&want).enumerate() {
                    if (a - b).abs() > 1e-5 {
                        return Err(format!("VERIFY FAILED: pr[{i}] {a} vs oracle {b}"));
                    }
                }
                println!("verified against power iteration");
            }
        }
        "mst" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let t = std::time::Instant::now();
            let r = algos::mst(&ctx);
            let elapsed = t.elapsed();
            println!(
                "mst: {} edges, total weight {}, {} trees, {} rounds",
                r.edges.len(),
                r.total_weight,
                r.num_trees,
                r.rounds
            );
            outcome = r.outcome;
            dump(&ctx, elapsed, r.outcome)?;
            if verify(r.outcome) {
                let want = algos::mst::mst_weight_kruskal(og);
                if r.total_weight != want {
                    return Err(format!(
                        "VERIFY FAILED: mst weight {} vs kruskal {want}",
                        r.total_weight
                    ));
                }
                println!("verified against Kruskal");
            }
        }
        "kcore" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let t = std::time::Instant::now();
            let r = algos::k_core(&ctx);
            println!("kcore: degeneracy {}, {} iterations", r.degeneracy, r.iterations);
            outcome = r.outcome;
            dump(&ctx, t.elapsed(), r.outcome)?;
            if verify(r.outcome) {
                verify_eq(
                    &restored(&relab, &r.core_numbers),
                    &algos::kcore::k_core_serial(og),
                    "core numbers",
                )?;
            }
        }
        "triangles" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let t = std::time::Instant::now();
            let r = algos::triangle_count(&ctx);
            println!("triangles: {} total", r.total);
            outcome = r.outcome;
            dump(&ctx, t.elapsed(), r.outcome)?;
            if verify(r.outcome) {
                let want = serial::triangle_count(og);
                if r.total != want {
                    return Err(format!("VERIFY FAILED: {} vs oracle {want}", r.total));
                }
                println!("verified against oracle");
            }
        }
        "labelprop" => {
            let ctx = instrument(Context::new(&g).with_policy(policy));
            let t = std::time::Instant::now();
            let r = algos::label_prop::label_propagation(&ctx, 50);
            println!(
                "label propagation: {} communities after {} rounds",
                r.num_communities, r.rounds
            );
            outcome = r.outcome;
            dump(&ctx, t.elapsed(), r.outcome)?;
        }
        other => unreachable!("primitive {other:?} validated against PRIMITIVES"),
    }
    if !outcome.is_converged() {
        println!("partial result: {outcome}");
        if let Some(cp) = &ckpt_policy {
            let p = cp.path(ckpt_name);
            if p.exists() {
                println!("resumable checkpoint: {}", p.display());
            }
        }
    }
    Ok(outcome)
}

/// Uninstalls the loader fault hook when dropped, so `--inject-faults`
/// in one `execute` call cannot leak into the next (tests share the
/// process).
struct ReadFaultGuard;

impl Drop for ReadFaultGuard {
    fn drop(&mut self) {
        io::set_read_fault_hook(None);
    }
}

/// Installs the process-wide loader hook that turns `io=RATE` faults
/// into deterministic truncations and bit-flips of the file under read.
fn install_read_faults(inj: Arc<FaultInjector>) -> ReadFaultGuard {
    io::set_read_fault_hook(Some(Arc::new(move |path: &str, len: u64| {
        if !inj.should_fail(FaultKind::Io, path) {
            return None;
        }
        Some(if inj.uniform(path, 2) == 0 {
            io::IoFault::Truncate { at: inj.uniform(path, len) }
        } else {
            io::IoFault::Corrupt { at: inj.uniform(path, len), mask: 0x40 }
        })
    })));
    ReadFaultGuard
}

/// Writes the instrumentation trace collected by `ctx`'s sink as a JSON
/// document (schema `gunrock-stats/v1`, documented in DESIGN.md): run
/// metadata, aggregate totals with derived MTEPS, the per-operator
/// summary breakdown, and the full per-iteration step/switch trace.
fn dump_stats(
    path: &str,
    primitive: &str,
    g: &Csr,
    elapsed: std::time::Duration,
    ctx: &Context<'_>,
    outcome: RunOutcome,
) -> Result<(), String> {
    use gunrock_engine::json::JsonBuilder;
    let stats = ctx.run_stats();
    let timing = Timing { elapsed, edges_examined: ctx.counters.edges() };
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.field_str("schema", "gunrock-stats/v1");
    j.field_str("primitive", primitive);
    j.field_u64("num_vertices", g.num_vertices() as u64);
    j.field_u64("num_edges", g.num_edges() as u64);
    j.field_str("outcome", &outcome.to_string());
    j.field_f64("total_millis", timing.millis());
    j.field_f64("mteps", timing.mteps());
    j.key("counters");
    j.begin_object();
    j.field_u64("iterations", ctx.counters.iters());
    j.field_u64("pull_iterations", ctx.counters.pull_iters());
    j.field_u64("edges_examined", ctx.counters.edges());
    j.end_object();
    j.key("summary");
    j.begin_object();
    stats.summary().with_pool(ctx.pool().stats()).write_json_fields(&mut j);
    j.end_object();
    j.key("trace");
    stats.write_json(&mut j);
    j.end_object();
    std::fs::write(path, j.finish()).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("stats trace ({} steps) written to {path}", stats.steps.len());
    Ok(())
}

/// Maps a per-vertex result computed on the relabeled graph back to
/// original-id order (a plain copy when `--reorder` is off).
fn restored<T: Copy>(relab: &Option<Relabeling>, values: &[T]) -> Vec<T> {
    match relab {
        Some(r) => r.restore_values(values),
        None => values.to_vec(),
    }
}

/// Rewrites component labels to the canonical "minimum vertex id in the
/// component" representative, so labelings that picked different (but
/// internally consistent) representatives compare equal.
fn canonical_components(labels: &[VertexId]) -> Vec<VertexId> {
    let mut rep: HashMap<VertexId, VertexId> = HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        // first occurrence in id order is the minimum member
        rep.entry(l).or_insert(v as VertexId);
    }
    labels.iter().map(|l| rep[l]).collect()
}

fn verify_eq<T: PartialEq + std::fmt::Debug>(
    got: &[T],
    want: &[T],
    what: &str,
) -> Result<(), String> {
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        if a != b {
            return Err(format!("VERIFY FAILED: {what}[{i}] = {a:?}, oracle says {b:?}"));
        }
    }
    println!("verified against serial oracle");
    Ok(())
}

/// Entry point used by `main`: returns the process exit code.
/// `0` converged, `1` error, `2` partial result (a guard tripped).
///
/// `serve` and `query` are delegated to the service crate: `gunrock
/// serve` is the in-process twin of the `gunrock-serve` binary and
/// `gunrock query` is its line-protocol client.
pub fn run(raw: Vec<String>) -> i32 {
    match raw.first().map(String::as_str) {
        Some("serve") => return gunrock_server::cli::run_serve(raw[1..].to_vec()),
        Some("query") => return gunrock_server::cli::run_query(raw[1..].to_vec()),
        _ => {}
    }
    match parse_args(raw).and_then(|args| execute(&args)) {
        Ok(outcome) if outcome.is_converged() => 0,
        Ok(_) => 2,
        Err(msg) => {
            eprintln!("{msg}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_primitive_and_flags() {
        let a = parse_args(args(&["bfs", "--scale", "8", "--verify", "--src", "3"])).unwrap();
        assert_eq!(a.primitive, "bfs");
        assert!(a.verify);
        assert!(!a.reorder);
        assert!(parse_args(args(&["bfs", "--reorder"])).unwrap().reorder);
        assert_eq!(a.flags.get("scale").unwrap(), "8");
        assert_eq!(a.flags.get("src").unwrap(), "3");
    }

    #[test]
    fn parse_errors_are_helpful() {
        assert!(parse_args(args(&[])).unwrap_err().contains("usage"));
        assert!(parse_args(args(&["--scale", "8"])).unwrap_err().contains("primitive"));
        assert!(parse_args(args(&["bfs", "--scale"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(args(&["bfs", "stray"])).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn weights_spec_parsing() {
        let a = parse_args(args(&["sssp", "--weights", "1..9"])).unwrap();
        assert_eq!(a.weights().unwrap(), Some((1, 9)));
        let bad = parse_args(args(&["sssp", "--weights", "9..1"])).unwrap();
        assert!(bad.weights().is_err());
        let malformed = parse_args(args(&["sssp", "--weights", "7"])).unwrap();
        assert!(malformed.weights().is_err());
    }

    #[test]
    fn serial_threshold_flag_runs_and_rejects_garbage() {
        let a = parse_args(args(&[
            "bfs",
            "--gen",
            "kron",
            "--scale",
            "7",
            "--serial-threshold",
            "128",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(execute(&a).unwrap(), RunOutcome::Converged);
        // disabled fast path must produce the same verified result
        let off = parse_args(args(&[
            "bfs",
            "--gen",
            "kron",
            "--scale",
            "7",
            "--serial-threshold",
            "0",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(execute(&off).unwrap(), RunOutcome::Converged);
        let bad =
            parse_args(args(&["bfs", "--scale", "7", "--serial-threshold", "lots"])).unwrap();
        assert!(execute(&bad).unwrap_err().contains("--serial-threshold"));
    }

    #[test]
    fn memory_budget_flag_fails_structured_and_rejects_garbage() {
        // a tiny budget: every core primitive must fail with the
        // structured BudgetExceeded error, never an allocator abort
        for prim in ["bfs", "sssp", "bc", "cc", "pagerank"] {
            let a = parse_args(args(&[prim, "--scale", "7", "--memory-budget", "1k"])).unwrap();
            let err = execute(&a).unwrap_err();
            assert!(err.contains("memory budget"), "{prim}: {err}");
        }
        // a generous budget leaves the run unaffected
        let a =
            parse_args(args(&["bfs", "--scale", "7", "--memory-budget", "64m", "--verify"]))
                .unwrap();
        assert_eq!(execute(&a).unwrap(), RunOutcome::Converged);
        let bad =
            parse_args(args(&["bfs", "--scale", "7", "--memory-budget", "lots"])).unwrap();
        assert!(execute(&bad).unwrap_err().contains("--memory-budget"));
    }

    #[test]
    fn watchdog_flag_leaves_healthy_runs_alone() {
        let a = parse_args(args(&["bfs", "--scale", "7", "--watchdog-ms", "5000", "--verify"]))
            .unwrap();
        assert_eq!(execute(&a).unwrap(), RunOutcome::Converged);
    }

    #[test]
    fn generators_produce_graphs() {
        for kind in ["kron", "soc", "roadnet", "bitcoin", "random", "smallworld"] {
            let a = parse_args(args(&["stats", "--gen", kind, "--scale", "7"])).unwrap();
            let g = load_or_generate(&a).unwrap();
            assert!(g.num_vertices() > 0, "{kind}");
        }
        let bad = parse_args(args(&["stats", "--gen", "nope"])).unwrap();
        assert!(load_or_generate(&bad).is_err());
    }

    #[test]
    fn execute_every_primitive_with_verify() {
        for prim in [
            "bfs",
            "sssp",
            "bc",
            "cc",
            "pagerank",
            "mst",
            "kcore",
            "triangles",
            "labelprop",
            "stats",
        ] {
            let a = parse_args(args(&[prim, "--scale", "7", "--verify"])).unwrap();
            let outcome = execute(&a).unwrap_or_else(|e| panic!("{prim}: {e}"));
            assert!(outcome.is_converged(), "{prim}");
        }
    }

    #[test]
    fn reorder_restores_original_ids_for_every_primitive() {
        // soc at scale 8 has pronounced hubs, so the relabeling is a real
        // permutation; --verify compares restored results against oracles
        // run on the ORIGINAL graph, so any translation slip fails loudly
        for prim in ["bfs", "sssp", "bc", "cc", "pagerank", "mst", "kcore", "triangles"] {
            let a = parse_args(args(&[
                prim,
                "--gen",
                "soc",
                "--scale",
                "8",
                "--src",
                "5",
                "--reorder",
                "--verify",
            ]))
            .unwrap();
            let outcome = execute(&a).unwrap_or_else(|e| panic!("{prim}: {e}"));
            assert!(outcome.is_converged(), "{prim}");
        }
    }

    #[test]
    fn reordered_run_resumes_from_checkpoint() {
        // the snapshot stores internal (relabeled) ids; resuming with the
        // same --reorder flag must round-trip the source and the labels
        let dir =
            std::env::temp_dir().join(format!("gunrock_cli_rckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap().to_string();
        let partial = args(&[
            "bfs",
            "--gen",
            "soc",
            "--scale",
            "8",
            "--src",
            "5",
            "--reorder",
            "--max-iters",
            "2",
            "--checkpoint-every",
            "1",
            "--checkpoint-dir",
            &d,
        ]);
        assert_eq!(run(partial), 2);
        let ckpt = dir.join("bfs.ckpt");
        assert!(ckpt.exists());
        let resumed = args(&[
            "bfs",
            "--gen",
            "soc",
            "--scale",
            "8",
            "--reorder",
            "--resume",
            ckpt.to_str().unwrap(),
            "--verify",
        ]);
        assert_eq!(run(resumed), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_flags_build_a_run_policy() {
        let a = parse_args(args(&["bfs", "--max-iters", "3", "--timeout-ms", "500"])).unwrap();
        let p = a.policy().unwrap();
        assert!(!p.is_unbounded());
        let bad = parse_args(args(&["bfs", "--max-iters", "lots"])).unwrap();
        assert!(bad.policy().unwrap_err().contains("--max-iters"));
        let bad = parse_args(args(&["bfs", "--timeout-ms", "-1"])).unwrap();
        assert!(bad.policy().unwrap_err().contains("--timeout-ms"));
    }

    #[test]
    fn capped_run_reports_partial_and_exit_code_2() {
        // scale-9 kron BFS needs more than one level to converge
        let a = parse_args(args(&["bfs", "--scale", "9", "--max-iters", "1"])).unwrap();
        let outcome = execute(&a).unwrap();
        assert_eq!(outcome, RunOutcome::IterationCapped);
        assert_eq!(run(args(&["bfs", "--scale", "9", "--max-iters", "1"])), 2);
        // verify is skipped (not failed) on a partial result
        let a =
            parse_args(args(&["bfs", "--scale", "9", "--max-iters", "1", "--verify"])).unwrap();
        assert!(execute(&a).is_ok());
        // unbounded runs still exit 0
        assert_eq!(run(args(&["bfs", "--scale", "7"])), 0);
    }

    #[test]
    fn every_primitive_honors_the_iteration_cap() {
        // every iterative primitive must come back quickly with a
        // partial outcome under a 1-iteration policy, never hang or panic
        for prim in
            ["bfs", "sssp", "bc", "cc", "pagerank", "mst", "kcore", "triangles", "labelprop"]
        {
            let a = parse_args(args(&[prim, "--scale", "8", "--max-iters", "1"])).unwrap();
            let outcome = execute(&a).unwrap_or_else(|e| panic!("{prim}: {e}"));
            assert_eq!(outcome, RunOutcome::IterationCapped, "{prim}");
        }
    }

    #[test]
    fn stats_json_emits_step_records_for_all_five_primitives() {
        let dir = std::env::temp_dir();
        for prim in ["bfs", "sssp", "bc", "cc", "pagerank"] {
            let path =
                dir.join(format!("gunrock_cli_stats_{prim}_{}.json", std::process::id()));
            let path_s = path.to_str().unwrap().to_string();
            let a = parse_args(args(&[prim, "--scale", "8", "--stats-json", &path_s])).unwrap();
            execute(&a).unwrap_or_else(|e| panic!("{prim}: {e}"));
            let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{prim}: {e}"));
            assert!(json.contains(r#""schema":"gunrock-stats/v1""#), "{prim}");
            assert!(json.contains(&format!(r#""primitive":"{prim}""#)));
            // at least one recorded operator step with a strategy and a
            // frontier size; cc is filter-only (Hook/Jump), the rest advance
            let expected_op = if prim == "cc" { "filter" } else { "advance" };
            assert!(json.contains(&format!(r#""operator":"{expected_op}""#)), "{prim}: {json}");
            assert!(json.contains(r#""strategy":"#), "{prim}");
            assert!(json.contains(r#""input_len":"#), "{prim}");
            assert!(json.contains(r#""duration_ms":"#), "{prim}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn robustness_flags_parse() {
        let a = parse_args(args(&[
            "bfs",
            "--retries",
            "2",
            "--inject-faults",
            "panic=0.5,io=0.1",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(a.retry_policy().unwrap(), RetryPolicy::retries(2));
        let plan = a.fault_plan().unwrap().unwrap();
        assert_eq!(plan.seed, 7);
        assert!(plan.is_active());
        let bad = parse_args(args(&["bfs", "--inject-faults", "bogus=1"])).unwrap();
        assert!(bad.fault_plan().unwrap_err().contains("--inject-faults"));
        let a =
            parse_args(args(&["bfs", "--checkpoint-every", "2", "--checkpoint-dir", "/tmp"]))
                .unwrap();
        let cp = a.checkpoint_policy().unwrap().unwrap();
        assert_eq!(cp.every, 2);
        assert_eq!(cp.path("bfs"), std::path::Path::new("/tmp/bfs.ckpt"));
        let orphan = parse_args(args(&["bfs", "--checkpoint-dir", "/tmp"])).unwrap();
        assert!(orphan.checkpoint_policy().unwrap_err().contains("--checkpoint-every"));
    }

    #[test]
    fn interrupted_run_resumes_from_checkpoint() {
        let dir = std::env::temp_dir().join(format!("gunrock_cli_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap().to_string();
        for prim in ["bfs", "pagerank"] {
            // a capped run exits 2 and leaves a resumable snapshot behind
            let partial = args(&[
                prim,
                "--scale",
                "8",
                "--max-iters",
                "2",
                "--checkpoint-every",
                "1",
                "--checkpoint-dir",
                &d,
            ]);
            assert_eq!(run(partial), 2, "{prim}");
            let ckpt = dir.join(format!("{prim}.ckpt"));
            assert!(ckpt.exists(), "{prim}: no checkpoint at {}", ckpt.display());
            // resuming it converges and matches the serial oracle
            let resumed =
                args(&[prim, "--scale", "8", "--resume", ckpt.to_str().unwrap(), "--verify"]);
            assert_eq!(run(resumed), 0, "{prim}");
            std::fs::remove_file(&ckpt).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_bad_inputs() {
        // a checkpoint for one primitive cannot seed another
        let dir =
            std::env::temp_dir().join(format!("gunrock_cli_xckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap().to_string();
        let partial = args(&[
            "bfs",
            "--scale",
            "7",
            "--max-iters",
            "1",
            "--checkpoint-every",
            "1",
            "--checkpoint-dir",
            &d,
        ]);
        assert_eq!(run(partial), 2);
        let ckpt = dir.join("bfs.ckpt");
        let a = parse_args(args(&["sssp", "--scale", "7", "--resume", ckpt.to_str().unwrap()]))
            .unwrap();
        assert!(execute(&a).unwrap_err().contains("holds a bfs run"));
        // unsupported primitive and missing file are structured errors too
        let a = parse_args(args(&["mst", "--resume", "nope.ckpt"])).unwrap();
        assert!(execute(&a).unwrap_err().contains("--resume does not support"));
        let a = parse_args(args(&["bfs", "--resume", "nope.ckpt"])).unwrap();
        assert!(execute(&a).unwrap_err().contains("cannot resume"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_panics_surface_as_structured_errors() {
        // rate 1.0 poisons the very first operator: exit 1, never an abort
        let cmd = ["bfs", "--scale", "7", "--inject-faults", "panic=1.0"];
        let a = parse_args(args(&cmd)).unwrap();
        let err = execute(&a).unwrap_err();
        assert!(err.contains("run failed"), "{err}");
        assert_eq!(run(args(&cmd)), 1);
    }

    #[test]
    fn msbfs_sources_flag_matches_solo_oracle() {
        // --verify compares every lane against the serial oracle from
        // that lane's source, with and without --reorder restore
        let a = parse_args(args(&[
            "bfs",
            "--gen",
            "soc",
            "--scale",
            "7",
            "--sources",
            "9",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(execute(&a).unwrap(), RunOutcome::Converged);
        let a = parse_args(args(&[
            "bfs",
            "--gen",
            "soc",
            "--scale",
            "7",
            "--src",
            "3",
            "--sources",
            "5",
            "--reorder",
            "--verify",
        ]))
        .unwrap();
        assert_eq!(execute(&a).unwrap(), RunOutcome::Converged);
        let bad = parse_args(args(&["bfs", "--scale", "7", "--sources", "65"])).unwrap();
        assert!(execute(&bad).unwrap_err().contains("--sources"));
        let bad = parse_args(args(&["bfs", "--scale", "7", "--sources", "0"])).unwrap();
        assert!(execute(&bad).unwrap_err().contains("--sources"));
    }

    #[test]
    fn msbfs_batch_resumes_from_checkpoint() {
        let dir =
            std::env::temp_dir().join(format!("gunrock_cli_msckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap().to_string();
        let partial = args(&[
            "bfs",
            "--gen",
            "kron",
            "--scale",
            "8",
            "--sources",
            "6",
            "--max-iters",
            "1",
            "--checkpoint-every",
            "1",
            "--checkpoint-dir",
            &d,
        ]);
        assert_eq!(run(partial), 2);
        let ckpt = dir.join("msbfs.ckpt");
        assert!(ckpt.exists(), "no batch checkpoint at {}", ckpt.display());
        // a plain bfs resume must refuse the batch snapshot...
        let a = parse_args(args(&[
            "bfs",
            "--gen",
            "kron",
            "--scale",
            "8",
            "--resume",
            ckpt.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(execute(&a).unwrap_err().contains("holds a msbfs run"));
        // ...and the batched resume converges and verifies every lane
        let resumed = args(&[
            "bfs",
            "--gen",
            "kron",
            "--scale",
            "8",
            "--sources",
            "6",
            "--resume",
            ckpt.to_str().unwrap(),
            "--verify",
        ]);
        assert_eq!(run(resumed), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn src_out_of_range_is_an_error() {
        let a = parse_args(args(&["bfs", "--scale", "7", "--src", "99999999"])).unwrap();
        assert!(execute(&a).unwrap_err().contains("out of range"));
    }

    #[test]
    fn unknown_primitive_fails_before_building_a_graph() {
        let a = parse_args(args(&["frobnicate"])).unwrap();
        let t = std::time::Instant::now();
        let err = execute(&a).unwrap_err();
        assert!(err.contains("unknown primitive"));
        // rejection must not pay for the default scale-12 generation
        assert!(t.elapsed() < std::time::Duration::from_millis(200));
    }

    #[test]
    fn run_returns_exit_codes() {
        assert_eq!(run(args(&["stats", "--scale", "6"])), 0);
        assert_eq!(run(args(&["bogus"])), 1);
    }
}
